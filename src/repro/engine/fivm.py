"""The F-IVM engine: factorized higher-order IVM over a view tree.

This is the paper's primary contribution. The engine materializes every
view of the tree at initialization. An update δR then only touches the
views on the leaf-to-root path of R (Figure 1, right): the delta is lifted
into payload space at R's leaf view, joined with the *materialized* sibling
views at each inner node, marginalized through the node's variable, and
folded into the node's materialization — regardless of the payload ring.

Compared to re-evaluation the work per update is bounded by the sizes of
the deltas and sibling views along one path; compared to first-order IVM
the sibling aggregates are already materialized instead of being recomputed
from base relations on every update.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.config import EngineConfig, resolve_engine_config
from repro.data.columnar import bulk_liftable, lift_column
from repro.data.database import Database
from repro.data.index import IndexedRelation
from repro.data.relation import Relation, _hook_getter, _key_getter, _positions
from repro.engine.base import MaintenanceEngine
from repro.engine.compile import FusedPath, compile_fused_path, live_mirrors
from repro.engine.evaluation import evaluate_tree
from repro.errors import EngineError, RingError
from repro.query.query import Query
from repro.rings.decay import DecayRing
from repro.query.variable_order import VariableOrder
from repro.viewtree.builder import ViewTree, build_probe_plan, build_view_tree

__all__ = ["FIVMEngine"]


class FIVMEngine(MaintenanceEngine):
    """Higher-order factorized incremental view maintenance.

    With ``use_view_index`` (the default) every materialized view that
    serves as a sibling on some relation's maintenance path carries
    persistent hash indexes on exactly the attribute sets those paths
    probe — the probe plan is computed once from the view tree at
    construction. Delta propagation then loops over the (small) delta and
    looks matches up (`Relation.join_probe`) instead of scanning the full
    sibling per update, and index maintenance is folded into the same
    ``add_inplace`` calls that refresh the views. ``use_view_index=False``
    falls back to per-call hash joins (the pre-index behaviour) for
    ablation; results are identical either way.

    ``use_columnar`` adds the third access path: batches of at least
    ``EngineStatistics.COLUMNAR_MIN_DELTA`` delta keys run a *columnar*
    maintenance ladder when the payload ring implements the bulk kernels
    (``Ring.has_bulk_kernels``) and every lifting function on the path is
    bulk-liftable: the delta travels as key rows plus one contiguous
    payload block, sibling joins probe once per distinct hook value, and
    lift/join/marginalize arithmetic runs as whole-batch kernel calls
    instead of a payload object per tuple. Results are identical to the
    per-tuple paths (floating-point group sums may associate differently,
    like any batch-size change).

    ``use_fused`` (default on) compiles each columnar ladder further
    into a :class:`~repro.engine.compile.FusedPath` — one fused kernel
    per (relation, path) chaining lift -> probe-gather -> multiply ->
    group-sum with int-keyed grouping and columnar sibling mirrors, and
    *bit-equal* to the interpreted ladder by construction. Under
    ``use_columnar="auto"`` compound rings always take the columnar
    path, and scalar rings take it exactly when fused kernels are
    available (the interpreted ladder loses ~10% to their dict fast
    paths, the fused one wins). ``use_fused=False`` restores the
    interpreted ladder (and the compound-rings-only "auto" rule) for
    ablation. ``profile_stages`` accumulates per-stage wall-clock
    seconds (lift/probe/multiply/group/scatter) into
    ``stats.stage_seconds`` — the ``repro bench --profile`` breakdown.
    """

    strategy = "fivm"

    #: Legacy constructor kwargs accepted by the deprecation shim.
    LEGACY_OPTIONS = (
        "use_view_index", "adaptive_probe", "use_columnar", "use_fused",
        "profile_stages",
    )

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        config: Optional[EngineConfig] = None,
        **legacy,
    ):
        super().__init__(query)
        config = resolve_engine_config(
            config, legacy, "FIVMEngine", self.LEGACY_OPTIONS
        )
        self.config = config
        self.plan = query.build_plan()
        #: Decay clock (None unless built with ``decay=RATE/EVERY``). The
        #: wrap must happen *before* the view tree is built so every
        #: lifting closure and compiled kernel sees the decayed ring.
        self.decay_ring: Optional[DecayRing] = None
        self._decay_every = 0
        decay_spec = config.decay_spec()
        if decay_spec is not None:
            try:
                self.plan.ring = DecayRing(self.plan.ring, decay_spec.rate)
            except RingError as exc:
                raise EngineError(
                    f"decay={decay_spec.describe()!r} cannot run query "
                    f"{query.name!r}: {exc}"
                ) from exc
            self.decay_ring = self.plan.ring
            self._decay_every = decay_spec.every
        self.tree: ViewTree = build_view_tree(query, order=order, plan=self.plan)
        #: Leaf relations under each view's subtree: each summand of view
        #: ``v`` carries exactly ``k_v`` boosted leaf factors, so the
        #: settle rebase for ``v`` is ``rate ** (ticks * k_v)``.
        self._decay_leaf_counts: Dict[str, int] = (
            {
                name: _subtree_leaf_count(view)
                for name, view in self.tree.views.items()
            }
            if self.decay_ring is not None
            else {}
        )
        self.materialized: Dict[str, Relation] = {}
        self.use_view_index = config.use_view_index
        #: Pick probe vs. scan per sibling join from |delta| against the
        #: sibling's size (constants on EngineStatistics); with
        #: ``adaptive_probe=False`` every step probes, the pre-adaptive
        #: behaviour. Only meaningful when ``use_view_index`` is on.
        self.adaptive_probe = config.adaptive_probe
        self.use_columnar = config.use_columnar
        self.use_fused = config.use_fused
        self.profile_stages = config.profile_stages
        self.probe_plan = build_probe_plan(self.tree)
        # Maintenance paths and per-view lifting dicts are pure functions
        # of the static tree; precompute them so apply() does no per-update
        # work proportional to tree depth beyond the propagation itself.
        self._paths = {}
        for name in self.tree.leaf_of:
            path = self.tree.path_to_root(name)
            leaf = path[0]
            leaf_lifts = {attr: self.plan.lifts[attr] for attr in leaf.lifted}
            inner = tuple(
                (view, {attr: self.plan.lifts[attr] for attr in view.lifted})
                for view in path[1:]
            )
            self._paths[name] = (leaf, leaf_lifts, inner)
        # Per-relation columnar ladders (absent where not vectorizable):
        # like the probe plan, a pure function of the static tree, so the
        # schema evolution along each path — hook/projection positions at
        # every step — is compiled once here rather than per batch.
        self._columnar_paths: Dict[str, "_ColumnarPath"] = {}
        #: Fused kernels, one per vectorizable relation path (PR 7).
        self._fused_paths: Dict[str, FusedPath] = {}
        ring = self.plan.ring
        if self.use_columnar == "auto":
            # Compound rings always profit from the columnar path; scalar
            # rings only beat their dict fast paths once the ladder is
            # *fused*, so they engage exactly when fused kernels compile.
            columnar_on = ring.has_bulk_kernels and (
                not ring.is_scalar or self.use_fused
            )
        else:
            columnar_on = bool(self.use_columnar) and ring.has_bulk_kernels
        if columnar_on and self.use_view_index:
            for name in self._paths:
                cpath = self._build_columnar_path(name)
                if cpath is not None:
                    self._columnar_paths[name] = cpath
                    if self.use_fused:
                        fpath = compile_fused_path(self, name)
                        if fpath is not None:
                            self._fused_paths[name] = fpath
            if self.use_columnar == "auto" and ring.is_scalar:
                # Never run the interpreted columnar ladder for scalar
                # rings under "auto" — only fused paths made them engage.
                self._columnar_paths = {
                    name: cpath
                    for name, cpath in self._columnar_paths.items()
                    if name in self._fused_paths
                }

    # ------------------------------------------------------------------

    def initialize(self, database: Database) -> None:
        relations = {
            name: database.relation(name) for name in self.query.relation_names
        }
        self.materialized = {}
        # Index-aware evaluation: probed views come out of evaluate_tree
        # already wrapped and indexed, so there is no second install pass
        # over the freshly materialized data.
        evaluate_tree(
            self.tree,
            relations,
            self.materialized,
            index_specs=self.probe_plan.index_specs if self.use_view_index else None,
        )
        self._initialized = True
        self._refresh_view_sizes()

    def apply(self, relation_name: str, delta: Relation) -> None:
        self._require_initialized()
        self._check_delta(relation_name, delta)
        if not delta.data:
            return
        stats = self.stats
        cpath = self._columnar_paths.get(relation_name)
        if cpath is not None and len(delta.data) >= stats.COLUMNAR_MIN_DELTA:
            fpath = self._fused_paths.get(relation_name)
            if fpath is not None:
                fpath.apply(self, delta)
            else:
                self._apply_columnar(relation_name, delta, cpath)
            return
        stats.record_batch(delta)
        # Mirrors only exist when fused paths run; small batches passing
        # through here must still account for the mirrors they invalidate.
        count_mirrors = bool(self._fused_paths)
        materialized = self.materialized
        view_sizes = stats.view_sizes
        leaf, leaf_lifts, inner = self._paths[relation_name]
        current = delta.lift(self.plan.ring, leaf.key, leaf_lifts)
        leaf_view = materialized[leaf.name]
        if count_mirrors:
            stats.mirror_invalidations += live_mirrors(leaf_view)
        leaf_view.add_inplace(current)
        view_sizes[leaf.name] = len(leaf_view)
        probe_steps = (
            self.probe_plan.path_steps[relation_name]
            if self.use_view_index
            else None
        )
        adaptive = self.adaptive_probe
        scan_ratio = stats.ADAPTIVE_SCAN_RATIO
        scan_min_delta = stats.ADAPTIVE_SCAN_MIN_DELTA
        previous_name = leaf.name
        for position, (view, lifts) in enumerate(inner):
            if not current.data:
                break
            joined = current
            if probe_steps is not None:
                for step in probe_steps[position]:
                    sibling = materialized[step.sibling]
                    if (
                        adaptive
                        and len(joined.data) >= scan_min_delta
                        and len(joined.data) > scan_ratio * len(sibling.data)
                    ):
                        # The delta dwarfs the sibling: one hash join over
                        # the small sibling beats per-entry index probes.
                        joined = joined.join(sibling)
                        stats.scan_steps += 1
                    else:
                        # O(|delta| x matches): probe the persistent index
                        # (materialized lazily on the first probe).
                        index = sibling.ensure_index(step.attrs)
                        probes, hits = index.probes, index.hits
                        joined = joined.join_probe(sibling, index)
                        stats.index_probes += index.probes - probes
                        stats.index_hits += index.hits - hits
                        stats.probe_steps += 1
                    if not joined.data:
                        break
            else:
                siblings = [
                    child for child in view.children if child.name != previous_name
                ]
                # Smallest sibling first keeps the running delta join narrow.
                siblings.sort(key=lambda child: len(materialized[child.name]))
                for sibling in siblings:
                    joined = joined.join(materialized[sibling.name])
                    if not joined.data:
                        break
            if not joined.data:
                # The delta annihilated mid-join: every view above receives
                # nothing, so stop before marginalize — with 3+ children the
                # partial join may not even carry all of view.key yet.
                break
            current = joined.marginalize(view.key, lifts)
            stats.delta_tuples_propagated += len(current.data)
            target = materialized[view.name]
            if count_mirrors:
                stats.mirror_invalidations += live_mirrors(target)
            target.add_inplace(current)
            view_sizes[view.name] = len(target)
            previous_name = view.name

    # ------------------------------------------------------------------
    # Columnar (bulk-kernel) maintenance
    # ------------------------------------------------------------------

    def _build_columnar_path(self, relation_name: str) -> Optional["_ColumnarPath"]:
        """Compile the static columnar ladder for one relation's path.

        Returns ``None`` when any lifting function on the path lacks bulk
        metadata — the per-tuple paths then handle every batch for this
        relation.
        """
        leaf, leaf_lifts, inner = self._paths[relation_name]
        schema = tuple(self.query.schema_of(relation_name).attributes)
        leaf_lift_items = []
        for attr, fn in leaf_lifts.items():
            if not bulk_liftable(fn):
                return None
            leaf_lift_items.append((schema.index(attr), fn))
        leaf_group_of = _key_getter(_positions(schema, leaf.key))
        schema_now = leaf.key
        probe_steps = self.probe_plan.path_steps[relation_name]
        steps: List[_ColumnarStep] = []
        for position, (view, lifts) in enumerate(inner):
            probes = []
            for step in probe_steps[position]:
                sibling_key = self.tree.views[step.sibling].key
                hook_of = _hook_getter(_positions(schema_now, step.attrs))
                keep_b = tuple(
                    i for i, attr in enumerate(sibling_key) if attr not in schema_now
                )
                probes.append(
                    _ColumnarProbe(step.sibling, step.attrs, hook_of, _key_getter(keep_b))
                )
                schema_now = schema_now + tuple(sibling_key[i] for i in keep_b)
            lift_items = []
            for attr, fn in lifts.items():
                if not bulk_liftable(fn):
                    return None
                lift_items.append((schema_now.index(attr), fn))
            steps.append(
                _ColumnarStep(
                    view.name,
                    tuple(probes),
                    tuple(lift_items),
                    _key_getter(_positions(schema_now, view.key)),
                )
            )
            schema_now = view.key
        return _ColumnarPath(
            leaf.name, tuple(leaf_lift_items), leaf_group_of, tuple(steps)
        )

    def _apply_columnar(
        self, relation_name: str, delta: Relation, cpath: "_ColumnarPath"
    ) -> None:
        """Batch-at-a-time maintenance: one bulk-kernel ladder per path.

        Mirrors :meth:`apply` exactly — lift to the leaf view, join the
        materialized siblings, marginalize through each node's variable,
        fold into the materializations — but the running delta is a list
        of key rows plus one contiguous payload block, so the per-tuple
        ring dispatch and payload allocation of the scalar paths collapse
        into whole-batch kernel calls.
        """
        stats = self.stats
        stats.record_batch(delta)
        stats.columnar_batches += 1
        ring = self.plan.ring
        materialized = self.materialized
        view_sizes = stats.view_sizes
        columnar = delta.columnar()
        rows = columnar.rows
        # Lift: payload = (product of lifted attribute values) * multiplicity.
        if cpath.leaf_lifts:
            block = None
            for position, fn in cpath.leaf_lifts:
                lifted = lift_column(ring, fn, columnar.column(position))
                block = lifted if block is None else ring.mul_many(block, lifted)
            block = ring.scale_many(block, columnar.counts)
        else:
            block = ring.from_int_many(columnar.counts)
        rows, block = _group_block(ring, rows, cpath.leaf_group_of, block)
        rows, block = _compact_block(ring, rows, block)
        leaf_view = materialized[cpath.leaf_name]
        leaf_view.add_block_inplace(rows, block)
        view_sizes[cpath.leaf_name] = len(leaf_view)
        for step in cpath.steps:
            if not rows:
                break
            for probe in step.probes:
                sibling = materialized[probe.sibling]
                index = sibling.ensure_index(probe.attrs)
                rows, block = _join_probe_block(ring, rows, block, probe, index, stats)
                stats.columnar_steps += 1
                if not rows:
                    break
            if not rows:
                # Annihilated mid-join: nothing propagates further up.
                break
            for position, fn in step.lifts:
                column = [row[position] for row in rows]
                block = ring.mul_many(block, lift_column(ring, fn, column))
            rows, block = _group_block(ring, rows, step.group_of, block)
            rows, block = _compact_block(ring, rows, block)
            stats.delta_tuples_propagated += len(rows)
            target = materialized[step.view_name]
            target.add_block_inplace(rows, block)
            view_sizes[step.view_name] = len(target)

    def result(self) -> Relation:
        self._require_initialized()
        self._settle_decay()
        return self.materialized[self.tree.root.name]

    # ------------------------------------------------------------------
    # Decay (exponential forgetting)
    # ------------------------------------------------------------------

    def _decay_interval(self) -> int:
        return self._decay_every

    def advance_decay(self, ticks: int = 1) -> None:
        """Advance the decay clock; settles automatically on boost overflow.

        Stored payloads are untouched — only the ring's entry boost moves —
        unless the boost would exceed the ring's limit, in which case the
        pending decay is folded into every view (rescale-on-overflow) and
        the clock rebases to zero.
        """
        ring = self.decay_ring
        if ring is None:
            super().advance_decay(ticks)
        ring.advance(ticks)
        self.stats.decay_ticks += ticks
        if ring.needs_rescale:
            self._settle_decay()
            self.stats.decay_rescales += 1

    def _settle_decay(self) -> None:
        """Fold the pending decay into every materialized view (lazy rebase).

        Each view ``v`` is scaled by ``rate ** (ticks * k_v)`` where
        ``k_v`` counts the leaf relations under its subtree, payload
        objects are *replaced* (never mutated — published snapshots
        sharing them stay frozen), and the clock resets. Idempotent; a
        no-op on undecayed engines and at tick zero, so :meth:`result`
        and :meth:`_export_payload` call it unconditionally.
        """
        ring = self.decay_ring
        if ring is None or ring.ticks == 0:
            return
        scale_float = ring.base.scale_float
        for name, relation in self.materialized.items():
            factor = ring.settle_factor(self._decay_leaf_counts[name])
            if factor == 1.0:
                continue
            data = relation.data
            for key, payload in data.items():
                data[key] = scale_float(payload, factor)
            # Same invalidate-on-write discipline as add_inplace: the
            # cached columnar form and every index mirror describe the
            # pre-settle payloads, and index buckets alias them — refresh
            # bucket entries in place so bucket *order* (which the fused
            # probe's bit-equality rests on) survives the settle.
            relation._columnar = None
            indexes = getattr(relation, "indexes", None)
            if indexes:
                for index in indexes.values():
                    index.mirror = None
                    for bucket in index.buckets.values():
                        for key in bucket:
                            bucket[key] = data[key]
        ring.reset()
        self.stats.decay_settles += 1

    # ------------------------------------------------------------------

    def view(self, name: str) -> Relation:
        """Materialization of a named view (for inspection and tests)."""
        self._require_initialized()
        try:
            return self.materialized[name]
        except KeyError:
            raise EngineError(f"unknown view {name!r}") from None

    def total_view_tuples(self) -> int:
        """Total number of materialized key-payload entries (memory proxy)."""
        return sum(len(relation) for relation in self.materialized.values())

    def memory_report(self) -> Dict[str, Dict[str, int]]:
        """Per-view entry counts, payload weights and index overhead.

        ``entries`` is the number of keys; ``payload_weight`` counts the
        scalar cells inside the payloads (1 for scalar rings, the number
        of non-zero vector/matrix cells for cofactor rings, annotation
        counts for relational values) — the factorization-aware memory
        measure the engine paper reports. Views carrying persistent
        indexes additionally report ``indexes`` (how many), their total
        ``index_entries`` (one per live key per index; payloads are
        shared, not copied) and ``index_buckets``.
        """
        report: Dict[str, Dict[str, int]] = {}
        for name, relation in self.materialized.items():
            weight = sum(
                _payload_weight(payload) for payload in relation.data.values()
            )
            entry = {"entries": len(relation), "payload_weight": weight}
            indexes = getattr(relation, "indexes", None)
            if indexes:
                entry["indexes"] = len(indexes)
                entry["index_entries"] = sum(
                    index.entry_count() for index in indexes.values()
                )
                entry["index_buckets"] = sum(
                    index.bucket_count() for index in indexes.values()
                )
            report[name] = entry
        return report

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    state_payload = "views"

    def _export_payload(self) -> dict:
        """Snapshot of the materialized views (picklable).

        The payload plan holds lifting closures, so the engine object
        itself is not serialized — recreate it from the query and restore
        the snapshot with :meth:`import_state`. Pending decay is settled
        first, so snapshots always hold tick-zero (fully rebased) state
        and restore into any compatible engine without a decay clock.
        """
        self._settle_decay()
        return {
            "views": {
                name: dict(relation.data)
                for name, relation in self.materialized.items()
            }
        }

    def _import_payload(self, state) -> None:
        """Restore the materialized views of a snapshot.

        The engine must have been built for the same query/order (the
        header provenance is checked by the base class; view names are
        additionally validated against the current tree). Ring-zero
        payloads in the snapshot are dropped on restore (snapshots
        written while a cancellation was parked would otherwise silently
        inflate view sizes), and persistent view indexes are rebuilt
        from the restored materializations.
        """
        views = state["views"]
        missing = set(self.tree.views) - set(views)
        unexpected = set(views) - set(self.tree.views)
        if missing or unexpected:
            raise EngineError(
                f"snapshot does not match the view tree "
                f"(missing={sorted(missing)}, unexpected={sorted(unexpected)})"
            )
        self.materialized = {}
        for name, data in views.items():
            view = self.tree.views[name]
            # The constructor validates keys and filters ring-zero payloads.
            self.materialized[name] = Relation(
                view.key, self.plan.ring, data=data, name=name
            )
        if self.use_view_index:
            self._install_indexes()

    def _after_restore(self) -> None:
        self._refresh_view_sizes()

    # ------------------------------------------------------------------

    def _install_indexes(self) -> None:
        """Wrap probed views as :class:`IndexedRelation`, indexes registered.

        The probe plan names, per view, exactly the attribute tuples some
        relation's maintenance path looks up; views never probed (e.g. the
        root) stay plain relations. The hash maps themselves materialize
        lazily on first probe (:meth:`IndexedRelation.ensure_index`).
        """
        for name, specs in self.probe_plan.index_specs.items():
            indexed = IndexedRelation.from_relation(self.materialized[name])
            for attrs in specs:
                indexed.register_index(attrs)
            self.materialized[name] = indexed

    def _refresh_view_sizes(self) -> None:
        """Full recomputation — initialization/restore only; ``apply``
        updates just the touched path."""
        self.stats.view_sizes = {
            name: len(relation) for name, relation in self.materialized.items()
        }


def _subtree_leaf_count(view) -> int:
    """Leaf relations under ``view``'s subtree (1 for a leaf view)."""
    if view.is_leaf:
        return 1
    return sum(_subtree_leaf_count(child) for child in view.children)


def _payload_weight(payload) -> int:
    """Scalar cells inside one payload (see :meth:`FIVMEngine.memory_report`)."""
    if hasattr(payload, "q"):  # cofactor values
        q = payload.q
        if hasattr(q, "shape"):  # numpy: count structural non-zeros
            return 1 + int(np.count_nonzero(payload.s)) + int(np.count_nonzero(q))
        return (
            _payload_weight_scalar(payload.c)
            + sum(_payload_weight_scalar(v) for v in payload.s.values())
            + sum(_payload_weight_scalar(v) for v in q.values())
        )
    return _payload_weight_scalar(payload)


def _payload_weight_scalar(value) -> int:
    if hasattr(value, "data"):  # relational values: one cell per annotation
        return max(len(value.data), 1)
    return 1


# ----------------------------------------------------------------------
# Columnar maintenance machinery (compiled per relation at construction)
# ----------------------------------------------------------------------


class _ColumnarProbe:
    """One sibling probe of a columnar step: compiled key extractors."""

    __slots__ = ("sibling", "attrs", "hook_of", "rest_of")

    def __init__(self, sibling: str, attrs: Tuple[str, ...], hook_of, rest_of):
        self.sibling = sibling
        self.attrs = attrs
        self.hook_of = hook_of  # running-delta row -> index hook
        self.rest_of = rest_of  # sibling key -> its non-shared suffix


class _ColumnarStep:
    """One inner view of a columnar ladder: probes, lifts, projection."""

    __slots__ = ("view_name", "probes", "lifts", "group_of")

    def __init__(
        self,
        view_name: str,
        probes: Tuple[_ColumnarProbe, ...],
        lifts: Tuple[Tuple[int, Callable], ...],
        group_of,
    ):
        self.view_name = view_name
        self.probes = probes
        self.lifts = lifts  # (position in the running schema, lift fn)
        self.group_of = group_of  # running row -> view-key projection


class _ColumnarPath:
    """The compiled columnar ladder of one relation's maintenance path."""

    __slots__ = ("leaf_name", "leaf_lifts", "leaf_group_of", "steps")

    def __init__(
        self,
        leaf_name: str,
        leaf_lifts: Tuple[Tuple[int, Callable], ...],
        leaf_group_of,
        steps: Tuple[_ColumnarStep, ...],
    ):
        self.leaf_name = leaf_name
        self.leaf_lifts = leaf_lifts  # (position in the delta schema, lift fn)
        self.leaf_group_of = leaf_group_of
        self.steps = steps


def _group_block(ring, rows, group_of, block):
    """Project rows through ``group_of`` and group-sum the payload block.

    The columnar form of marginalization's group-by: group ids are
    assigned in first-seen order with one dict pass, then a single
    ``sum_segments`` kernel call sums every group.
    """
    group_index: Dict[Tuple, int] = {}
    keys: List[Tuple] = []
    gids = np.empty(len(rows), dtype=np.intp)
    setdefault = group_index.setdefault
    for i, row in enumerate(rows):
        group = group_of(row)
        gid = setdefault(group, len(keys))
        if gid == len(keys):
            keys.append(group)
        gids[i] = gid
    if len(keys) == len(rows):
        # Nothing merged; group ids are the identity permutation.
        return keys, block
    return keys, ring.sum_segments(block, gids, len(keys))


def _compact_block(ring, rows, block):
    """Drop rows whose payload is the exact ring zero (± cancellation)."""
    mask = ring.is_zero_many(block)
    if not mask.any():
        return rows, block
    keep = np.flatnonzero(~mask)
    return [rows[i] for i in keep], ring.take(block, keep)


def _join_probe_block(ring, rows, block, probe: _ColumnarProbe, index, stats):
    """Columnar sibling join: group delta rows by hook, probe each once.

    Returns the widened rows (delta key + the sibling's non-shared
    suffix) and the element-wise payload products, computed with two
    kernel calls (`take` + `mul_many`) over the match pairs. Probe
    counters advance per *distinct* hook value — grouping first is what
    makes the columnar step cheaper than per-row probing.
    """
    hook_of = probe.hook_of
    rest_of = probe.rest_of
    groups: Dict = {}
    setdefault = groups.setdefault
    for i, row in enumerate(rows):
        setdefault(hook_of(row), []).append(i)
    buckets_get = index.buckets.get
    left: List[int] = []
    out_rows: List[Tuple] = []
    matches: List = []
    hits = 0
    for hook, members in groups.items():
        bucket = buckets_get(hook)
        if not bucket:
            continue
        hits += 1
        for key_b, payload_b in bucket.items():
            rest = rest_of(key_b)
            for i in members:
                left.append(i)
                out_rows.append(rows[i] + rest)
                matches.append(payload_b)
    index.probes += len(groups)
    index.hits += hits
    stats.index_probes += len(groups)
    stats.index_hits += hits
    if not out_rows:
        return [], ring.zero_block(0)
    product = ring.mul_many(
        ring.take(block, np.asarray(left, dtype=np.intp)),
        ring.make_block(matches),
    )
    return out_rows, product
