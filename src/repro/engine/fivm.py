"""The F-IVM engine: factorized higher-order IVM over a view tree.

This is the paper's primary contribution. The engine materializes every
view of the tree at initialization. An update δR then only touches the
views on the leaf-to-root path of R (Figure 1, right): the delta is lifted
into payload space at R's leaf view, joined with the *materialized* sibling
views at each inner node, marginalized through the node's variable, and
folded into the node's materialization — regardless of the payload ring.

Compared to re-evaluation the work per update is bounded by the sizes of
the deltas and sibling views along one path; compared to first-order IVM
the sibling aggregates are already materialized instead of being recomputed
from base relations on every update.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.base import MaintenanceEngine
from repro.engine.evaluation import evaluate_tree
from repro.errors import EngineError
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.viewtree.builder import ViewTree, build_view_tree

__all__ = ["FIVMEngine"]


class FIVMEngine(MaintenanceEngine):
    """Higher-order factorized incremental view maintenance."""

    strategy = "fivm"

    def __init__(self, query: Query, order: Optional[VariableOrder] = None):
        super().__init__(query)
        self.plan = query.build_plan()
        self.tree: ViewTree = build_view_tree(query, order=order, plan=self.plan)
        self.materialized: Dict[str, Relation] = {}

    # ------------------------------------------------------------------

    def initialize(self, database: Database) -> None:
        relations = {
            name: database.relation(name) for name in self.query.relation_names
        }
        self.materialized = {}
        evaluate_tree(self.tree, relations, self.materialized)
        self._initialized = True
        self._refresh_view_sizes()

    def apply(self, relation_name: str, delta: Relation) -> None:
        self._require_initialized()
        self._check_delta(relation_name, delta)
        if not delta.data:
            return
        self.stats.record_batch(delta)
        plan = self.plan
        path = self.tree.path_to_root(relation_name)
        leaf = path[0]
        lifts = {attr: plan.lifts[attr] for attr in leaf.lifted}
        current = delta.lift(plan.ring, leaf.key, lifts)
        self.materialized[leaf.name].add_inplace(current)
        previous_name = leaf.name
        for view in path[1:]:
            if not current.data:
                break
            joined = current
            siblings = [
                child for child in view.children if child.name != previous_name
            ]
            # Smallest sibling first keeps the running delta join narrow.
            siblings.sort(key=lambda child: len(self.materialized[child.name]))
            for sibling in siblings:
                joined = joined.join(self.materialized[sibling.name])
                if not joined.data:
                    break
            lifts = {attr: plan.lifts[attr] for attr in view.lifted}
            current = joined.marginalize(view.key, lifts)
            self.stats.delta_tuples_propagated += len(current.data)
            self.materialized[view.name].add_inplace(current)
            previous_name = view.name
        self._refresh_view_sizes()

    def result(self) -> Relation:
        self._require_initialized()
        return self.materialized[self.tree.root.name]

    # ------------------------------------------------------------------

    def view(self, name: str) -> Relation:
        """Materialization of a named view (for inspection and tests)."""
        self._require_initialized()
        try:
            return self.materialized[name]
        except KeyError:
            raise EngineError(f"unknown view {name!r}") from None

    def total_view_tuples(self) -> int:
        """Total number of materialized key-payload entries (memory proxy)."""
        return sum(len(relation) for relation in self.materialized.values())

    def memory_report(self) -> Dict[str, Dict[str, int]]:
        """Per-view entry counts and payload weights.

        ``entries`` is the number of keys; ``payload_weight`` counts the
        scalar cells inside the payloads (1 for scalar rings, the number
        of non-zero vector/matrix cells for cofactor rings, annotation
        counts for relational values) — the factorization-aware memory
        measure the engine paper reports.
        """
        report: Dict[str, Dict[str, int]] = {}
        for name, relation in self.materialized.items():
            weight = sum(
                _payload_weight(payload) for payload in relation.data.values()
            )
            report[name] = {"entries": len(relation), "payload_weight": weight}
        return report

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Snapshot of the materialized views (picklable).

        The payload plan holds lifting closures, so the engine object
        itself is not serialized — recreate it from the query and restore
        the snapshot with :meth:`import_state`.
        """
        self._require_initialized()
        return {
            "query": self.query.name,
            "views": {
                name: dict(relation.data)
                for name, relation in self.materialized.items()
            },
            "stats": self.stats.snapshot(),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        The engine must have been built for the same query/order (view
        names are validated against the current tree).
        """
        views = state["views"]
        missing = set(self.tree.views) - set(views)
        unexpected = set(views) - set(self.tree.views)
        if missing or unexpected:
            raise EngineError(
                f"snapshot does not match the view tree "
                f"(missing={sorted(missing)}, unexpected={sorted(unexpected)})"
            )
        self.materialized = {}
        for name, data in views.items():
            view = self.tree.views[name]
            relation = Relation(view.key, self.plan.ring, name=name)
            relation.data = dict(data)
            self.materialized[name] = relation
        self._initialized = True
        self._refresh_view_sizes()

    def _refresh_view_sizes(self) -> None:
        self.stats.view_sizes = {
            name: len(relation) for name, relation in self.materialized.items()
        }


def _payload_weight(payload) -> int:
    """Scalar cells inside one payload (see :meth:`FIVMEngine.memory_report`)."""
    if hasattr(payload, "q"):  # cofactor values
        q = payload.q
        if hasattr(q, "shape"):  # numpy: count structural non-zeros
            import numpy as np

            return 1 + int(np.count_nonzero(payload.s)) + int(np.count_nonzero(q))
        return (
            _payload_weight_scalar(payload.c)
            + sum(_payload_weight_scalar(v) for v in payload.s.values())
            + sum(_payload_weight_scalar(v) for v in q.values())
        )
    return _payload_weight_scalar(payload)


def _payload_weight_scalar(value) -> int:
    if hasattr(value, "data"):  # relational values: one cell per annotation
        return max(len(value.data), 1)
    return 1
