"""Engine interface and maintenance statistics.

Every engine maintains the result of one query under updates to base
relations. The contract:

- :meth:`MaintenanceEngine.initialize` evaluates the query on an initial
  database;
- :meth:`MaintenanceEngine.apply` processes one delta (a Z-relation of
  signed multiplicities) to one base relation;
- :meth:`MaintenanceEngine.result` returns the maintained result, a
  :class:`~repro.data.relation.Relation` keyed by the free variables with
  payloads in the query's ring.

Engines differ only in *how* they keep the result fresh, which is exactly
what the paper's experiments compare.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, Iterable, Mapping, Optional, Tuple

from repro.data.batcher import UpdateBatcher
from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import EngineError
from repro.query.query import Query
from repro.serving.snapshot import EngineSnapshot, SnapshotStore

__all__ = ["EngineStatistics", "MaintenanceEngine"]


@dataclass
class EngineStatistics:
    """Counters engines update as they process deltas.

    The ``ADAPTIVE_*`` class constants calibrate the adaptive
    probe-vs-scan choice F-IVM makes per maintenance step: a sibling is
    *probed* through its persistent index (O(|delta| x matches)) unless
    the running delta dwarfs the sibling — then one hash join that
    indexes the small sibling per call beats per-entry probe dispatch.
    Calibrated on the retailer stream benchmarks
    (``bench_delta_latency.py`` / ``bench_sharded_ingest.py``): probes
    win in every regime where the delta is at most about the sibling's
    size (the persistent index amortizes the build a scan join pays per
    call), so the crossover sits well above 1. The constants are
    class-level so a deployment can retune them globally without
    threading parameters through every engine.
    """

    #: Scan a sibling instead of probing it when
    #: ``|delta| > ADAPTIVE_SCAN_RATIO * |sibling|``: the scan join then
    #: rebuilds a hash index over the (much smaller) sibling and streams
    #: the delta through it once. Measured on dense-match workloads the
    #: two paths break even at ratio ~2 and the scan wins 20-30% per
    #: step from ratio ~4 up (retailer V_Item step, 900-entry sibling).
    ADAPTIVE_SCAN_RATIO: ClassVar[float] = 2.0
    #: Never scan below this delta size: for small deltas the probe path
    #: always wins regardless of the ratio (guards tiny views against
    #: ratio noise and keeps the latency-critical single-tuple regime on
    #: the O(|delta|) path unconditionally).
    ADAPTIVE_SCAN_MIN_DELTA: ClassVar[int] = 512
    #: Third access path: batches of at least this many delta keys run
    #: the columnar (bulk-kernel) maintenance ladder when the payload
    #: ring supports it. Below the threshold the per-tuple paths win —
    #: the fixed numpy setup cost per kernel call is not amortized — so
    #: the latency-critical single-tuple regime stays on the per-tuple
    #: path unconditionally. Calibrated on retailer numeric-COVAR
    #: ingestion (``bench_columnar.py``): the crossover sits at batch
    #: ~4 (0.75x at batch 1, 1.3x at 4, 2.8x at 32, >4x at 1000).
    COLUMNAR_MIN_DELTA: ClassVar[int] = 8

    updates_applied: int = 0
    batches_applied: int = 0
    tuples_applied: int = 0
    delta_tuples_propagated: int = 0
    #: Delta keys looked up in persistent view indexes, and how many of
    #: those lookups found a non-empty bucket (F-IVM with view indexes).
    index_probes: int = 0
    index_hits: int = 0
    #: Adaptive access-path decisions: sibling joins served by an index
    #: probe vs. by a scan join (F-IVM with ``adaptive_probe``), and
    #: sibling joins served by the columnar bulk kernels. In columnar
    #: steps ``index_probes`` counts one probe per *distinct* hook value
    #: of the delta (rows are grouped before probing), so probe counts
    #: are lower than the per-tuple paths' for the same data.
    probe_steps: int = 0
    scan_steps: int = 0
    columnar_steps: int = 0
    #: Batches that took the columnar maintenance ladder end to end.
    columnar_batches: int = 0
    #: Batches/sibling joins served by the *fused* per-path kernels (the
    #: compiled columnar ladder of :mod:`repro.engine.compile`). Fused
    #: batches also count as columnar batches — fusion is an
    #: implementation of the columnar access path, not a fourth one.
    fused_batches: int = 0
    fused_steps: int = 0
    #: Columnar sibling-mirror lifecycle: probes served from a live
    #: mirror, mirrors (re)built, and live mirrors dropped because their
    #: view was mutated. ``mirror_invalidations`` close to
    #: ``mirror_builds`` means the cache is thrashing (a view that is
    #: both probed and updated every batch).
    mirror_hits: int = 0
    mirror_builds: int = 0
    mirror_invalidations: int = 0
    #: Decay-clock lifecycle (engines built with ``decay=...``): clock
    #: ticks advanced, lazy settles folded into stored payloads (reads,
    #: exports), and settles forced by boost overflow
    #: (rescale-on-overflow). ``decay_rescales`` greater than zero on a
    #: short stream means the decay rate/interval make the boost grow
    #: too fast — settles are correct but not free.
    decay_ticks: int = 0
    decay_settles: int = 0
    decay_rescales: int = 0
    view_sizes: Dict[str, int] = field(default_factory=dict)
    #: Per-stage wall-clock seconds of the fused kernels (lift / probe /
    #: multiply / group / scatter), accumulated only when the engine was
    #: built with ``profile_stages=True`` (``repro bench --profile``).
    #: Not checkpoint-carried: timings describe one process's run.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    #: Counter fields carried through engine snapshots (checkpointing).
    COUNTER_FIELDS = (
        "updates_applied",
        "batches_applied",
        "tuples_applied",
        "delta_tuples_propagated",
        "index_probes",
        "index_hits",
        "probe_steps",
        "scan_steps",
        "columnar_steps",
        "columnar_batches",
        "fused_batches",
        "fused_steps",
        "mirror_hits",
        "mirror_builds",
        "mirror_invalidations",
        "decay_ticks",
        "decay_settles",
        "decay_rescales",
    )

    def record_batch(self, delta: Relation) -> None:
        self.batches_applied += 1
        self.updates_applied += sum(abs(m) for m in delta.data.values())
        self.tuples_applied += len(delta.data)

    def record_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def snapshot(self) -> Dict[str, int]:
        out = {name: getattr(self, name) for name in self.COUNTER_FIELDS}
        out.update({f"view:{name}": size for name, size in self.view_sizes.items()})
        return out

    def restore(self, snapshot: Dict[str, int]) -> None:
        """Reset counters to a :meth:`snapshot`'s values (absent keys -> 0).

        ``view:*`` sizes are *not* restored here — engines recompute them
        from the restored materializations, which is the ground truth.
        """
        for name in self.COUNTER_FIELDS:
            setattr(self, name, int(snapshot.get(name, 0)))


class MaintenanceEngine(ABC):
    """Base class for query-maintenance engines."""

    #: Human-readable engine name used in benchmark tables.
    strategy = "abstract"

    #: Version of the state dict :meth:`export_state` writes. Bump when the
    #: payload layout changes incompatibly; :meth:`import_state` rejects
    #: versions it does not read with a clear error.
    STATE_FORMAT_VERSION: ClassVar[int] = 1

    #: What kind of state this engine snapshots: ``"views"`` (materialized
    #: view tree — F-IVM and the sharded coordinator, mutually restorable),
    #: ``"relations"`` (base relations + result — naive and first-order,
    #: mutually restorable) or ``"aggregates"`` (nested per-aggregate view
    #: states). Import rejects a snapshot of a different kind.
    state_payload: ClassVar[str] = ""

    def __init__(self, query: Query):
        self.query = query
        self.stats = EngineStatistics()
        self._initialized = False
        self._snapshots = SnapshotStore()

    # ------------------------------------------------------------------

    @abstractmethod
    def initialize(self, database: Database) -> None:
        """Evaluate the query over ``database`` and set up internal state.

        Engines own copies of whatever state they need; the caller remains
        free to mutate ``database`` afterwards.
        """

    @abstractmethod
    def apply(self, relation_name: str, delta: Relation) -> None:
        """Maintain the result under ``delta`` applied to ``relation_name``."""

    @abstractmethod
    def result(self) -> Relation:
        """The maintained query result (treat as read-only)."""

    # ------------------------------------------------------------------
    # Serving: epoch snapshots
    # ------------------------------------------------------------------

    def publish(
        self,
        event_offset: Optional[int] = None,
        window: Optional[Tuple[int, int]] = None,
    ) -> EngineSnapshot:
        """Publish an immutable snapshot of the current result.

        The snapshot's ``result`` is the root view behind a fresh key
        dict with payload objects shared (zero-copy): maintenance never
        mutates a stored payload in place, so later :meth:`apply` calls
        cannot alter a published snapshot. The swap into the engine's
        snapshot store is a single attribute assignment — readers calling
        :meth:`latest_snapshot` concurrently (from other threads) observe
        either the previous epoch or this one, never a torn state.

        ``event_offset`` is the stream position the snapshot covers;
        callers that track consumed events (``apply_stream``, the serving
        ingest loop) pass it explicitly, everyone else gets the engine's
        ``updates_applied`` counter as the best available proxy.
        ``window`` is the live event-time window ``(start, end)`` the
        snapshot covers when the stream is windowed — provenance readers
        see next to the epoch and offset.

        One writer: publish from the maintenance thread only.
        """
        self._require_initialized()
        result = self.result().copy()
        if event_offset is None:
            event_offset = self.stats.updates_applied
        return self._snapshots.publish(
            result,
            query=self.query.name,
            strategy=self.strategy,
            event_offset=event_offset,
            stats=self.stats.snapshot(),
            window=window,
        )

    def latest_snapshot(self) -> Optional[EngineSnapshot]:
        """The most recently published snapshot (``None`` before the
        first :meth:`publish`); safe to call from reader threads."""
        return self._snapshots.latest

    def health(self) -> Dict[str, Any]:
        """Liveness/recovery summary for observability endpoints.

        The base engine has no failure modes beyond "not initialized";
        supervised engines override this with recovery statistics.
        """
        return {
            "status": "ok" if self._initialized else "uninitialized",
            "supervised": False,
        }

    # ------------------------------------------------------------------

    def apply_batch(self, updates: Iterable[Tuple[str, Relation]]) -> None:
        """Apply a sequence of per-relation deltas, one at a time."""
        for relation_name, delta in updates:
            self.apply(relation_name, delta)

    def apply_many(self, updates: Iterable[Tuple[str, Relation]]) -> None:
        """Apply a sequence of deltas, coalescing per relation first.

        All deltas targeting one relation are sum-merged into a single
        delta (cancelling pairs vanish), so each relation's maintenance
        path runs once per call instead of once per input delta — for
        F-IVM, one leaf-to-root traversal per touched relation.
        Maintenance is exact, so the final result is the same as applying
        the deltas one at a time; only intermediate states differ.
        Merged relations are applied in first-seen order.
        """
        merged: Dict[str, Relation] = {}
        order = []
        for relation_name, delta in updates:
            existing = merged.get(relation_name)
            if existing is None:
                merged[relation_name] = delta.copy()
                order.append(relation_name)
            else:
                existing.add_inplace(delta)
        for relation_name in order:
            delta = merged[relation_name]
            if delta.data:
                self.apply(relation_name, delta)

    def apply_stream(
        self,
        events: Iterable[Tuple[str, Tuple, int]],
        batch_size: int = 1000,
        checkpoint_every: int = 0,
        on_checkpoint: Optional[Callable[["MaintenanceEngine", int], None]] = None,
        publish_batches: bool = False,
        window_bounds: Optional[Callable[[], Tuple[int, int]]] = None,
    ) -> None:
        """Consume a stream of single-tuple updates in coalesced batches.

        ``events`` yields ``(relation_name, row, multiplicity)`` triples
        (e.g. from :meth:`~repro.datasets.updates.UpdateStream.tuples`).
        An :class:`~repro.data.batcher.UpdateBatcher` merges them into
        per-relation deltas of roughly ``batch_size`` updates, and each
        flushed batch goes through :meth:`apply_many`. The final partial
        batch is flushed when the stream ends.

        With ``checkpoint_every=N``, after every N consumed events the
        pending batch is flushed and ``on_checkpoint(engine, count)`` runs
        with all consumed events applied — the periodic-snapshot hook for
        long-running ingestion (pair it with
        :func:`repro.checkpoint.checkpoint_sink` to persist to disk).
        The callback is *not* invoked again for a final partial window;
        write a final checkpoint after the stream if you need one.

        With ``publish_batches=True`` every flushed batch ends in a
        :meth:`publish` carrying the exact consumed-event count, so
        concurrent readers via :meth:`latest_snapshot` are never more
        than one batch behind the stream, and at every ``checkpoint_every``
        boundary the published snapshot covers exactly the checkpointed
        position (staleness zero at checkpoints).

        When ``events`` is a :class:`~repro.data.windows.WindowedStream`
        (anything exposing ``current_bounds()``), every published
        snapshot carries the live window bounds as provenance;
        ``window_bounds`` passes the bounds callable explicitly for
        callers that wrap the stream in a plain generator (e.g. the
        serving ingest thread's event counter). When the
        engine was built with ``decay=RATE/EVERY``, the decay clock is
        advanced here once per EVERY consumed events — the pending batch
        is flushed first, so every event is weighted by the tick at which
        it arrived, on every engine identically.
        """
        if checkpoint_every < 0:
            raise EngineError("checkpoint_every must be >= 0")
        if checkpoint_every and on_checkpoint is None:
            raise EngineError(
                "checkpoint_every needs an on_checkpoint callback "
                "(e.g. repro.checkpoint.checkpoint_sink(path))"
            )
        schemas = {
            name: self.query.schema_of(name).attributes
            for name in self.query.relation_names
        }
        count = 0
        bounds_fn = window_bounds or getattr(events, "current_bounds", None)
        decay_every = self._decay_interval()

        def deliver(batch) -> None:
            self.apply_many(batch)
            if publish_batches:
                window = bounds_fn() if bounds_fn is not None else None
                self.publish(event_offset=count, window=window)

        batcher = UpdateBatcher(schemas, batch_size=batch_size, on_flush=deliver)
        for relation_name, row, multiplicity in events:
            # Counted *before* the add so a size-triggered flush publishes
            # the offset including the event that triggered it.
            count += 1
            batcher.add(relation_name, row, multiplicity)
            if decay_every and count % decay_every == 0:
                # Flush so everything consumed so far enters at the old
                # tick, then advance: the next event is one tick younger.
                pending = batcher.flush()
                if pending:
                    self.apply_many(pending)
                self.advance_decay(1)
            if checkpoint_every and count % checkpoint_every == 0:
                # flush() returns without delivering to on_flush; apply the
                # remainder so the snapshot covers every consumed event.
                pending = batcher.flush()
                if pending:
                    self.apply_many(pending)
                if publish_batches:
                    window = bounds_fn() if bounds_fn is not None else None
                    self.publish(event_offset=count, window=window)
                on_checkpoint(self, count)
        batcher.close()

    # ------------------------------------------------------------------
    # Decay (exponential forgetting)
    # ------------------------------------------------------------------

    def _decay_interval(self) -> int:
        """Events per decay tick (0 = engine has no decay configured).

        Drives the auto-advance in :meth:`apply_stream`; engines wrapping
        their ring in a :class:`~repro.rings.decay.DecayRing` override it.
        """
        return 0

    def advance_decay(self, ticks: int = 1) -> None:
        """Advance the engine's decay clock by ``ticks``.

        Only meaningful on engines built with ``decay=...``; the base
        implementation refuses so a stray advance on an undecayed engine
        fails loudly instead of silently doing nothing.
        """
        raise EngineError(
            f"{type(self).__name__} was not built with decay "
            "(pass decay='RATE/EVERY' in EngineConfig)"
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """Picklable snapshot of the maintained state.

        The dict carries a shared header — ``format_version``, ``payload``
        (state kind), ``strategy``, ``query`` (provenance) and ``stats``
        (maintenance counters) — plus the engine-specific payload from
        :meth:`_export_payload`. Engines sharing a payload kind restore
        each other's snapshots; see :mod:`repro.checkpoint` for the
        durable on-disk envelope.
        """
        self._require_initialized()
        state: Dict[str, Any] = {
            "format_version": self.STATE_FORMAT_VERSION,
            "payload": self.state_payload,
            "strategy": self.strategy,
            "query": self.query.name,
        }
        state.update(self._export_payload())
        config = self.config_provenance()
        if config:
            state["config"] = config
        state["stats"] = self.stats.snapshot()
        serving = self._snapshots.export_metadata()
        if serving is not None:
            state["serving"] = serving
        return state

    def import_state(self, state: Mapping[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        The engine must have been built for the same query (the header's
        ``query`` name is validated — a snapshot from a different query
        with coincidentally matching view names must not restore) and the
        snapshot's ``format_version``/``payload`` kind must match what
        this build reads. Maintenance counters are restored from the
        snapshot's ``stats`` (reset to zero when absent).

        Published serving snapshots survive the round trip: when the
        state carries a ``serving`` header (the exporter had published),
        the restored engine immediately republishes its latest epoch from
        the restored materializations — same epoch id, event offset and
        publish timestamp — so :meth:`latest_snapshot` serves reads right
        after restore and the next :meth:`publish` continues the epoch
        sequence.
        """
        self._validate_state(state)
        self._import_payload(state)
        self.stats = EngineStatistics()
        self.stats.restore(state.get("stats") or {})
        self._initialized = True
        self._after_restore()
        self._snapshots = SnapshotStore()
        serving = state.get("serving")
        if serving:
            window = serving.get("window")
            self._snapshots.publish(
                self.result().copy(),
                query=self.query.name,
                strategy=self.strategy,
                event_offset=int(serving["event_offset"]),
                stats=self.stats.snapshot(),
                epoch=int(serving["epoch"]),
                published_at=float(serving["published_at"]),
                window=tuple(window) if window is not None else None,
            )

    def _validate_state(self, state: Mapping[str, Any]) -> None:
        if not isinstance(state, Mapping):
            raise EngineError(
                f"engine state must be a mapping, got {type(state).__name__}"
            )
        version = state.get("format_version")
        if version is None:
            raise EngineError(
                "state has no 'format_version' field — not produced by "
                "export_state()?"
            )
        if version != self.STATE_FORMAT_VERSION:
            raise EngineError(
                f"unknown state format version {version!r}; this build "
                f"reads version {self.STATE_FORMAT_VERSION}"
            )
        kind = state.get("payload")
        if kind != self.state_payload:
            raise EngineError(
                f"state holds {kind!r} payloads (from a "
                f"{state.get('strategy', 'unknown')!r} engine) but "
                f"{type(self).__name__} restores {self.state_payload!r}"
            )
        query = state.get("query")
        if query != self.query.name:
            raise EngineError(
                f"state was exported from query {query!r} but this engine "
                f"maintains {self.query.name!r}"
            )

    def config_provenance(self) -> Optional[Dict[str, Any]]:
        """Primitive dict of how this engine was configured, for snapshot
        and checkpoint headers; ``None`` when the engine has no config."""
        config = getattr(self, "config", None)
        return config.to_dict() if config is not None else None

    def _export_payload(self) -> Dict[str, Any]:
        """Engine-specific snapshot contents (hook for :meth:`export_state`)."""
        raise EngineError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def _import_payload(self, state: Mapping[str, Any]) -> None:
        """Restore engine-specific contents (hook for :meth:`import_state`)."""
        raise EngineError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def _after_restore(self) -> None:
        """Post-restore hook (rebuild derived state such as view sizes)."""

    def _require_initialized(self) -> None:
        if not self._initialized:
            raise EngineError(
                f"{type(self).__name__} used before initialize()"
            )

    def _check_delta(self, relation_name: str, delta: Relation) -> None:
        schema = self.query.schema_of(relation_name)
        if tuple(delta.schema) != tuple(schema.attributes):
            raise EngineError(
                f"delta schema {delta.schema!r} does not match relation "
                f"{relation_name!r} {schema.attributes!r}"
            )
