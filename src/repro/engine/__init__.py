"""Maintenance engines: F-IVM and the baselines it is evaluated against."""

from repro.engine.base import EngineStatistics, MaintenanceEngine
from repro.engine.evaluation import evaluate_tree, evaluate_view
from repro.engine.firstorder import FirstOrderEngine
from repro.engine.fivm import FIVMEngine
from repro.engine.naive import NaiveEngine
from repro.engine.peragg import PerAggregateEngine
from repro.engine.sharded import ShardBackend, ShardedEngine, available_backends
from repro.engine.transport import (
    PipeTransport,
    ShardTransport,
    SharedMemoryTransport,
    available_transports,
)

__all__ = [
    "MaintenanceEngine",
    "EngineStatistics",
    "FIVMEngine",
    "FirstOrderEngine",
    "NaiveEngine",
    "PerAggregateEngine",
    "ShardedEngine",
    "ShardBackend",
    "ShardTransport",
    "PipeTransport",
    "SharedMemoryTransport",
    "available_backends",
    "available_transports",
    "evaluate_tree",
    "evaluate_view",
]
