"""Bottom-up evaluation of a view tree over concrete relations.

Shared by: F-IVM's initialization, the naive re-evaluation baseline, and
the first-order baseline's delta queries (which evaluate the same tree
with one base relation replaced by a delta — correct because the join is
linear in each of its relations).

With ``index_specs`` (the probe plan's view-to-attribute-tuples map),
views that maintenance paths later probe are wrapped as
:class:`~repro.data.index.IndexedRelation` with their probe keys
*registered* — the hash maps themselves materialize lazily on first
probe, so views no update stream ever probes cost nothing.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.data.index import IndexedRelation
from repro.data.relation import Relation
from repro.errors import EngineError
from repro.viewtree.builder import ViewTree
from repro.viewtree.node import View

__all__ = ["evaluate_view", "evaluate_tree"]

IndexSpecs = Mapping[str, Tuple[Tuple[str, ...], ...]]


def evaluate_view(
    tree: ViewTree,
    view: View,
    relations: Mapping[str, Relation],
    materialized: Optional[Dict[str, Relation]] = None,
    index_specs: Optional[IndexSpecs] = None,
) -> Relation:
    """Evaluate ``view`` recursively over the given base ``relations``.

    When ``materialized`` is provided, every evaluated view is recorded in
    it (used by F-IVM's initialization to materialize the whole tree).
    When ``index_specs`` names this view, the result is returned as an
    :class:`~repro.data.index.IndexedRelation` with the listed attribute
    tuples registered for lazy materialization on first probe.
    """
    plan = tree.plan
    if view.is_leaf:
        try:
            base = relations[view.relation]
        except KeyError:
            raise EngineError(f"missing base relation {view.relation!r}") from None
        lifts = {attr: plan.lifts[attr] for attr in view.lifted}
        result = base.lift(plan.ring, view.key, lifts)
    else:
        children = [
            evaluate_view(tree, child, relations, materialized, index_specs)
            for child in view.children
        ]
        # Join smallest-first keeps intermediates small on skewed data.
        children.sort(key=len)
        joined = children[0]
        for child in children[1:]:
            joined = joined.join(child)
        lifts = {attr: plan.lifts[attr] for attr in view.lifted}
        result = joined.marginalize(view.key, lifts)
    result.name = view.name
    if index_specs is not None:
        specs = index_specs.get(view.name)
        if specs:
            # Register lazily: the hash maps are only materialized once a
            # maintenance path actually probes them (IndexedRelation.
            # ensure_index), so views that are never probed pay neither
            # the build nor per-update index maintenance.
            indexed = IndexedRelation.from_relation(result)
            for attrs in specs:
                indexed.register_index(attrs)
            result = indexed
    if materialized is not None:
        materialized[view.name] = result
    return result


def evaluate_tree(
    tree: ViewTree,
    relations: Mapping[str, Relation],
    materialized: Optional[Dict[str, Relation]] = None,
    index_specs: Optional[IndexSpecs] = None,
) -> Relation:
    """Evaluate the whole tree; returns the root view's relation."""
    return evaluate_view(tree, tree.root, relations, materialized, index_specs)
