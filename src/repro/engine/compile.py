"""Fused per-path kernels: the compiled form of the columnar ladder.

The interpreted columnar ladder (``FIVMEngine._apply_columnar``) already
runs bulk ring kernels, but it still pays three per-row Python loops per
batch: the tuple-dict group-by of ``_group_block``, the per-match gather
loop of ``_join_probe_block`` and the per-key merge of
``add_block_inplace``. This module lowers each relation path's static
ladder into a :class:`FusedPath` — one compiled kernel per (relation,
path) that keeps the running delta as key *column arrays* plus one
payload block and chains lift -> probe-gather -> multiply -> group-sum
with numpy expression fusion:

- **int-keyed grouping** — key columns are integer-encoded per column
  (``np.unique`` for typed columns, one dict pass for object columns),
  combined into a single code word, and grouped with one ``np.unique``
  call whose result is remapped to *first-seen* order — the order the
  interpreted dict pass assigns, so every downstream float sum
  associates identically;
- **columnar sibling cache** — probes gather from the
  :class:`~repro.data.index.ColumnarMirror` each view index keeps (keys
  + payload block + bucket slot ranges + hook value columns, invalidated
  on every index mutation and rebuilt lazily here): probe hooks are
  matched against buckets numerically via per-column ``searchsorted``,
  match pairs are expanded by integer index arithmetic and payloads
  fetched with ``ring.take`` instead of ``make_block``'s per-match loop;
- **ordering discipline** — hooks are visited in first-seen order,
  bucket entries outer, delta rows inner, and within-group sums run over
  ascending original row order, exactly like the interpreted ladder, so
  fused results are *bit-equal*, not merely close.

``REPRO_JIT=1`` additionally routes the pair-expansion kernel through
numba when importable. The numpy expression remains the always-available
fallback and both produce identical integer index arrays, so the flag
can never change results — it is purely a speed knob, and it degrades
silently to numpy when numba is absent.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.data.columnar import bulk_liftable, column_array, lift_column
from repro.data.relation import _positions

__all__ = [
    "FusedPath",
    "compile_fused_path",
    "jit_kernels",
    "live_mirrors",
    "MIRROR_MAX_ENTRIES",
]

#: Views larger than this never get a columnar mirror: building one is a
#: full pass over every live entry, which a huge frequently-written
#: sibling would repay after every invalidation. Probes of such views
#: fall back to gathering just the matched buckets (still vectorized).
MIRROR_MAX_ENTRIES = 65_536

#: Combined group codes stay below this bound; larger key spaces fall
#: back to the tuple-dict grouping pass (same first-seen semantics).
_CODE_LIMIT = 1 << 62


# ----------------------------------------------------------------------
# Optional JIT backend (REPRO_JIT)
# ----------------------------------------------------------------------

_JIT_CACHE: Dict[str, Optional[Dict[str, Callable]]] = {}


def jit_kernels() -> Optional[Dict[str, Callable]]:
    """The numba-compiled kernel table, or ``None`` when unavailable.

    Gated by the ``REPRO_JIT`` environment variable (off by default) and
    resolved lazily: the first enabled call tries ``import numba`` and
    caches the outcome, so an environment without numba pays one failed
    import ever and runs the numpy expressions instead. The jitted
    kernels compute the same integer index arrays as the numpy fallback,
    so enabling the flag can never change engine results.
    """
    flag = os.environ.get("REPRO_JIT", "").strip().lower()
    if flag in ("", "0", "false", "off", "no"):
        return None
    if "kernels" in _JIT_CACHE:
        return _JIT_CACHE["kernels"]
    try:
        import numba
    except ImportError:
        kernels = None
    else:

        @numba.njit(cache=False)
        def expand_pairs(  # pragma: no cover - exercised only with numba
            members, member_start, member_count, entry_start, entry_count, total
        ):
            left = np.empty(total, dtype=np.intp)
            right = np.empty(total, dtype=np.intp)
            out = 0
            for g in range(member_start.shape[0]):
                m0 = member_start[g]
                mc = member_count[g]
                e0 = entry_start[g]
                for e in range(entry_count[g]):
                    slot = e0 + e
                    for j in range(mc):
                        left[out] = members[m0 + j]
                        right[out] = slot
                        out += 1
            return left, right

        kernels = {"expand_pairs": expand_pairs}
    _JIT_CACHE["kernels"] = kernels
    return kernels


def _expand_pairs(members, member_start, member_count, entry_start, entry_count):
    """Expand (group -> members, group -> entry slots) into match pairs.

    Emission order mirrors the interpreted probe loop exactly: groups in
    the given (first-seen) order, bucket entries outer, delta members
    inner in ascending original row order. Returns ``(left_rows,
    right_slots)`` — indexes into the running delta and into the sibling
    source block respectively.
    """
    pairs = member_count * entry_count
    total = int(pairs.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    if total == len(pairs):
        # Every surviving group matched exactly one (member, entry) pair —
        # the dominant shape when delta keys are distinct and the sibling
        # is keyed on the hook. Gather directly.
        return members[member_start], entry_start
    jit = jit_kernels()
    if jit is not None:
        return jit["expand_pairs"](
            members, member_start, member_count, entry_start, entry_count, total
        )
    gidx = np.repeat(np.arange(len(pairs), dtype=np.intp), pairs)
    first = np.concatenate(([0], np.cumsum(pairs)[:-1]))
    pos = np.arange(total, dtype=np.intp) - first[gidx]
    mc = member_count[gidx]
    left = members[member_start[gidx] + pos % mc]
    right = entry_start[gidx] + pos // mc
    return left, right


# ----------------------------------------------------------------------
# Int-keyed grouping
# ----------------------------------------------------------------------


class _Scratch:
    """Grow-only reusable buffers for the per-batch grouping codes.

    One per compiled path: fused batches run strictly sequentially per
    engine, and neither buffer outlives the grouping call that fills it,
    so reuse is safe and removes the last per-call allocations the
    profiler showed on the grouping hot loop.
    """

    __slots__ = ("_column_codes", "_combined")

    def __init__(self):
        self._column_codes = np.empty(0, dtype=np.intp)
        self._combined = np.empty(0, dtype=np.intp)

    def column_codes(self, n: int) -> np.ndarray:
        buf = self._column_codes
        if len(buf) < n:
            buf = self._column_codes = np.empty(max(n, 64), dtype=np.intp)
        return buf[:n]

    def combined(self, n: int) -> np.ndarray:
        buf = self._combined
        if len(buf) < n:
            buf = self._combined = np.empty(max(n, 64), dtype=np.intp)
        return buf[:n]


def _encode_column(arr: np.ndarray, scratch: Optional[_Scratch]):
    """``(codes, cardinality)`` for one key column (code ids arbitrary)."""
    if arr.dtype.kind == "O":
        index: Dict[Any, int] = {}
        n = len(arr)
        codes = scratch.column_codes(n) if scratch is not None else np.empty(n, dtype=np.intp)
        setdefault = index.setdefault
        for i, value in enumerate(arr.tolist()):
            codes[i] = setdefault(value, len(index))
        return codes, len(index)
    uniques, inverse = np.unique(arr, return_inverse=True)
    return inverse, len(uniques)


def _combined_codes(cols, n: int, scratch: _Scratch) -> Optional[np.ndarray]:
    """One integer code word per row, or ``None`` on code-space overflow."""
    combined = None
    card = 1
    for arr in cols:
        codes, k = _encode_column(arr, scratch)
        if k and card > _CODE_LIMIT // k:
            return None
        card *= max(k, 1)
        if combined is None:
            if len(cols) == 1:
                return codes
            combined = scratch.combined(n)
            np.copyto(combined, codes)
        else:
            combined *= k
            combined += codes
    return combined


def _group_rows_dict(cols, n: int):
    """Tuple-dict grouping fallback (key spaces too wide to int-encode)."""
    index: Dict[Tuple, int] = {}
    gids = np.empty(n, dtype=np.intp)
    reps: List[int] = []
    setdefault = index.setdefault
    for i, row in enumerate(zip(*(col.tolist() for col in cols))):
        gid = setdefault(row, len(reps))
        if gid == len(reps):
            reps.append(i)
        gids[i] = gid
    return gids, np.asarray(reps, dtype=np.intp)


def _group_rows(cols, n: int, scratch: _Scratch):
    """First-seen grouping of ``n`` rows by the given key columns.

    Returns ``(gids, reps)``: per-row group ids numbered in first-seen
    order — the numbering the interpreted dict pass assigns, which fixes
    the summation order of every float accumulation downstream — and the
    first row index of each group. With no key columns every row lands
    in the single empty group.
    """
    if not cols:
        return (
            np.zeros(n, dtype=np.intp),
            np.zeros(1 if n else 0, dtype=np.intp),
        )
    codes = _combined_codes(cols, n, scratch)
    if codes is None:
        return _group_rows_dict(cols, n)
    uniques, first, inverse = np.unique(codes, return_index=True, return_inverse=True)
    k = len(uniques)
    if k == n:
        identity = np.arange(n, dtype=np.intp)
        return identity, identity
    order = np.argsort(first, kind="stable")
    remap = np.empty(k, dtype=np.intp)
    remap[order] = np.arange(k, dtype=np.intp)
    return remap[inverse], first[order]


def _keys_of(cols, n: int) -> List[Tuple]:
    """Materialize key tuples from key columns (always tuples, like
    ``_key_getter``)."""
    if not cols:
        return [()] * n
    if len(cols) == 1:
        return [(value,) for value in cols[0].tolist()]
    return list(zip(*(col.tolist() for col in cols)))


# ----------------------------------------------------------------------
# Lifting
# ----------------------------------------------------------------------


def _lift_block(ring, fn, arr: np.ndarray):
    """Bulk-lift one attribute column (as an ndarray) into a payload block.

    Numeric columns whose lift transform is ``float`` (or absent) feed
    ``ring.lift_many`` the array directly — ``np.asarray(..., float64)``
    inside the kernel produces bit-identical values to the per-element
    ``float(v)`` loop. Everything else round-trips through the original
    Python objects via ``tolist``.
    """
    slot = getattr(fn, "bulk_slot", None)
    if slot is not None:
        transform = getattr(fn, "bulk_transform", None)
        if transform in (None, float) and arr.dtype.kind in "iufb":
            return ring.lift_many(slot, arr)
    return lift_column(ring, fn, arr.tolist())


_EMPTY_IDX = np.empty(0, dtype=np.intp)


class _MirrorMatch:
    """Cached hook-matching structure for one columnar mirror.

    ``col_uniques[p]`` holds the sorted distinct values of the mirror's
    ``p``-th hook column and ``m_sorted``/``m_order`` the buckets'
    combined per-column codes in sorted order plus the permutation back
    to bucket positions — enough to resolve a batch of probe hooks with
    one ``searchsorted`` per column. Each column's code base is
    ``len(uniques) + 1``, reserving one sentinel digit for probe values
    absent from the mirror (those can never equal a bucket code).
    ``hook_index`` is the hook→bucket-position dict fallback, built
    lazily when the columns resist integer encoding (overflow, exotic
    dtypes) or a probe batch brings incomparable values.
    """

    __slots__ = ("col_uniques", "m_sorted", "m_order", "hook_index")

    def __init__(self, col_uniques, m_sorted, m_order):
        self.col_uniques = col_uniques
        self.m_sorted = m_sorted
        self.m_order = m_order
        self.hook_index: Optional[Dict[Any, int]] = None


def _mirror_match(mirror) -> _MirrorMatch:
    match = mirror.match
    if match is None:
        cols = mirror.hook_cols
        col_uniques: Optional[List[np.ndarray]] = []
        comb = None
        card = 1
        for col in cols:
            if col.dtype.kind not in "iufbUS":
                col_uniques = None
                break
            uniques = np.unique(col)
            base = len(uniques) + 1
            if card > _CODE_LIMIT // base:
                col_uniques = None
                break
            card *= base
            col_uniques.append(uniques)
            codes = np.searchsorted(uniques, col)
            comb = codes if comb is None else comb * base + codes
        if col_uniques is None:
            match = _MirrorMatch(None, None, None)
        else:
            order = np.argsort(comb)
            match = _MirrorMatch(col_uniques, comb[order], order)
        mirror.match = match
    return match


def _hook_index_of(mirror, match: _MirrorMatch) -> Dict[Any, int]:
    hook_index = match.hook_index
    if hook_index is None:
        cols = mirror.hook_cols
        if len(cols) == 1:
            hooks: Iterable = cols[0].tolist()
        else:
            hooks = zip(*(col.tolist() for col in cols))
        hook_index = match.hook_index = {
            hook: b for b, hook in enumerate(hooks)
        }
    return hook_index


def _kinds_comparable(a: str, b: str) -> bool:
    return (a in "iufb" and b in "iufb") or (a == "U" and b == "U")


def _match_reps(hook_cols, reps, mirror):
    """Match per-group representative hooks against mirror buckets.

    Returns ``(keep, bucket_idx)``: positions of the groups whose hook
    owns a bucket (ascending, preserving first-seen group order) and the
    matching bucket position for each. The encoded path runs one
    ``searchsorted`` per column over the ``k`` representatives; batches
    whose values cannot be compared against the mirror's columns fall
    back to the hook→bucket dict.
    """
    match = _mirror_match(mirror)
    col_uniques = match.col_uniques
    if col_uniques is not None:
        comb = None
        for col, uniques in zip(hook_cols, col_uniques):
            if not _kinds_comparable(col.dtype.kind, uniques.dtype.kind):
                comb = None
                break
            rep_vals = col[reps]
            ku = len(uniques)
            pos = np.searchsorted(uniques, rep_vals)
            np.minimum(pos, ku - 1, out=pos)
            codes = np.where(uniques[pos] == rep_vals, pos, ku)
            comb = codes if comb is None else comb * (ku + 1) + codes
        if comb is not None:
            m_sorted = match.m_sorted
            pos = np.searchsorted(m_sorted, comb)
            np.minimum(pos, len(m_sorted) - 1, out=pos)
            keep = np.flatnonzero(m_sorted[pos] == comb)
            return keep, match.m_order[pos[keep]]
    hook_index = _hook_index_of(mirror, match)
    if len(hook_cols) == 1:
        rep_hooks: List = hook_cols[0][reps].tolist()
    else:
        rep_hooks = list(zip(*(col[reps].tolist() for col in hook_cols)))
    keep_g: List[int] = []
    bucket_g: List[int] = []
    get = hook_index.get
    for g, hook in enumerate(rep_hooks):
        b = get(hook)
        if b is not None:
            keep_g.append(g)
            bucket_g.append(b)
    return (
        np.asarray(keep_g, dtype=np.intp),
        np.asarray(bucket_g, dtype=np.intp),
    )


def live_mirrors(view) -> int:
    """Live columnar mirrors across a view's built indexes."""
    indexes = getattr(view, "indexes", None)
    if not indexes:
        return 0
    return sum(1 for index in indexes.values() if index.mirror is not None)


# ----------------------------------------------------------------------
# Compiled path
# ----------------------------------------------------------------------


class _FusedProbe:
    """One compiled sibling probe: pure schema positions, no closures."""

    __slots__ = ("sibling", "attrs", "hook_positions", "keep_positions")

    def __init__(
        self,
        sibling: str,
        attrs: Tuple[str, ...],
        hook_positions: Tuple[int, ...],
        keep_positions: Tuple[int, ...],
    ):
        self.sibling = sibling
        self.attrs = attrs
        #: Positions of the probe attributes in the *running* schema.
        self.hook_positions = hook_positions
        #: Positions (in the sibling key) of its non-shared suffix.
        self.keep_positions = keep_positions

    def run(self, cols, block, n, sibling, index, ring, stats, scratch):
        """Probe one sibling: returns the widened ``(cols, block, n)``.

        Delta rows are grouped by hook (first-seen order), each distinct
        hook is looked up once, and surviving (group, bucket) pairs are
        expanded into match-pair index arrays — gather + multiply then
        run as three kernel calls over the whole batch.
        """
        hook_cols = [cols[p] for p in self.hook_positions]
        gids, reps = _group_rows(hook_cols, n, scratch)
        k = len(reps)
        mirror = None
        if len(sibling.data) <= MIRROR_MAX_ENTRIES:
            if index.mirror is not None:
                stats.mirror_hits += 1
            else:
                stats.mirror_builds += 1
            mirror = index.columnar_mirror(ring, len(sibling.schema))
        if mirror is not None:
            if k == 0 or len(mirror.starts) == 0:
                keep_arr = ent_start = ent_count = _EMPTY_IDX
            elif not hook_cols:
                # Cartesian step: one delta group, one all-entries bucket.
                keep_arr = np.zeros(1, dtype=np.intp)
                ent_start = mirror.starts
                ent_count = mirror.counts
            else:
                keep_arr, bucket_idx = _match_reps(hook_cols, reps, mirror)
                ent_start = mirror.starts[bucket_idx]
                ent_count = mirror.counts[bucket_idx]
            src_block = mirror.block
            rest_sources = [mirror.key_cols[p] for p in self.keep_positions]
        else:
            # Direct mode (oversized sibling): gather only the matched
            # buckets into a transient columnar form, same layout rules.
            if not hook_cols:
                hooks: List = [()] if k else []
            elif len(hook_cols) == 1:
                hooks = hook_cols[0][reps].tolist()
            else:
                hooks = list(zip(*(col[reps].tolist() for col in hook_cols)))
            buckets_get = index.buckets.get
            keep_g: List[int] = []
            starts_g: List[int] = []
            counts_g: List[int] = []
            payloads: List = []
            keys_b: List[Tuple] = []
            for g, hook in enumerate(hooks):
                bucket = buckets_get(hook)
                if not bucket:
                    continue
                keep_g.append(g)
                starts_g.append(len(payloads))
                payloads.extend(bucket.values())
                keys_b.extend(bucket.keys())
                counts_g.append(len(payloads) - starts_g[-1])
            keep_arr = np.asarray(keep_g, dtype=np.intp)
            ent_start = np.asarray(starts_g, dtype=np.intp)
            ent_count = np.asarray(counts_g, dtype=np.intp)
            src_block = ring.make_block(payloads)
            if keys_b and self.keep_positions:
                cols_b = list(zip(*keys_b))
                rest_sources = [
                    column_array(list(cols_b[p])) for p in self.keep_positions
                ]
            else:
                rest_sources = [
                    column_array([]) for _ in self.keep_positions
                ]
        hits = len(keep_arr)
        index.probes += k
        index.hits += hits
        stats.index_probes += k
        stats.index_hits += hits
        if not hits:
            return cols, ring.zero_block(0), 0
        # Members of each group, ascending row order within the group.
        if reps is gids:
            # Identity grouping (all delta hooks distinct): each group's
            # single member is its own representative row.
            member_start = keep_arr
            member_count = np.ones(len(keep_arr), dtype=np.intp)
            order = gids
        else:
            order = np.argsort(gids, kind="stable")
            counts = np.bincount(gids, minlength=k)
            member_start = np.concatenate(([0], np.cumsum(counts)[:-1]))[keep_arr]
            member_count = counts[keep_arr]
        left, right = _expand_pairs(
            order,
            member_start,
            member_count,
            ent_start,
            ent_count,
        )
        new_cols = [col[left] for col in cols]
        new_cols.extend(src[right] for src in rest_sources)
        product = ring.mul_many(ring.take(block, left), ring.take(src_block, right))
        return new_cols, product, len(left)


class _FusedStep:
    """One inner view of a fused ladder: probes, lifts, projection."""

    __slots__ = ("view_name", "probes", "lifts", "group_positions")

    def __init__(
        self,
        view_name: str,
        probes: Tuple[_FusedProbe, ...],
        lifts: Tuple[Tuple[int, Callable], ...],
        group_positions: Tuple[int, ...],
    ):
        self.view_name = view_name
        self.probes = probes
        self.lifts = lifts  # (position in the running schema, lift fn)
        self.group_positions = group_positions


class FusedPath:
    """The fused kernel of one relation's maintenance path.

    :meth:`apply` is the compiled counterpart of
    ``FIVMEngine._apply_columnar``: same ladder, same statistics
    contract (``columnar_batches``/``columnar_steps`` keep advancing,
    with ``fused_batches``/``fused_steps`` on top), bit-equal results.
    """

    __slots__ = (
        "leaf_name",
        "leaf_lifts",
        "leaf_group_positions",
        "steps",
        "_scratch",
    )

    def __init__(
        self,
        leaf_name: str,
        leaf_lifts: Tuple[Tuple[int, Callable], ...],
        leaf_group_positions: Tuple[int, ...],
        steps: Tuple[_FusedStep, ...],
    ):
        self.leaf_name = leaf_name
        self.leaf_lifts = leaf_lifts  # (position in the delta schema, lift fn)
        self.leaf_group_positions = leaf_group_positions
        self.steps = steps
        self._scratch = _Scratch()

    def apply(self, engine, delta) -> None:
        """Run the fused ladder for one delta batch."""
        stats = engine.stats
        stats.record_batch(delta)
        stats.columnar_batches += 1
        stats.fused_batches += 1
        ring = engine.plan.ring
        materialized = engine.materialized
        view_sizes = stats.view_sizes
        timer = time.perf_counter if engine.profile_stages else None
        columnar = delta.columnar()
        cols = [column_array(column) for column in columnar.columns]
        n = len(columnar.counts)
        # Lift: payload = (product of lifted attribute values) * multiplicity.
        if timer:
            t0 = timer()
        if self.leaf_lifts:
            block = None
            for position, fn in self.leaf_lifts:
                lifted = _lift_block(ring, fn, cols[position])
                block = lifted if block is None else ring.mul_many(block, lifted)
            block = ring.scale_many(block, columnar.counts)
        else:
            block = ring.from_int_many(columnar.counts)
        if timer:
            stats.record_stage("lift", timer() - t0)
        cols, keys, block, n = self._group_compact(
            ring, cols, self.leaf_group_positions, block, n, stats, timer
        )
        leaf_view = materialized[self.leaf_name]
        if timer:
            t0 = timer()
        stats.mirror_invalidations += live_mirrors(leaf_view)
        leaf_view.add_block_inplace(keys, block)
        if timer:
            stats.record_stage("scatter", timer() - t0)
        view_sizes[self.leaf_name] = len(leaf_view)
        for step in self.steps:
            if not n:
                break
            for probe in step.probes:
                sibling = materialized[probe.sibling]
                index = sibling.ensure_index(probe.attrs)
                if timer:
                    t0 = timer()
                cols, block, n = probe.run(
                    cols, block, n, sibling, index, ring, stats, self._scratch
                )
                if timer:
                    stats.record_stage("probe", timer() - t0)
                stats.columnar_steps += 1
                stats.fused_steps += 1
                if not n:
                    break
            if not n:
                # Annihilated mid-join: nothing propagates further up.
                break
            if step.lifts:
                if timer:
                    t0 = timer()
                for position, fn in step.lifts:
                    block = ring.mul_many(block, _lift_block(ring, fn, cols[position]))
                if timer:
                    stats.record_stage("multiply", timer() - t0)
            cols, keys, block, n = self._group_compact(
                ring, cols, step.group_positions, block, n, stats, timer
            )
            stats.delta_tuples_propagated += n
            target = materialized[step.view_name]
            if timer:
                t0 = timer()
            stats.mirror_invalidations += live_mirrors(target)
            target.add_block_inplace(keys, block)
            if timer:
                stats.record_stage("scatter", timer() - t0)
            view_sizes[step.view_name] = len(target)

    def _group_compact(self, ring, cols, group_positions, block, n, stats, timer):
        """Group-sum by the key positions, then drop exact ring zeros.

        Returns ``(group_cols, keys, block, k)``: the gathered key
        columns (the running schema after projection), matching key
        tuples for the scatter, and the compacted block.
        """
        if timer:
            t0 = timer()
        group_cols = [cols[p] for p in group_positions]
        gids, reps = _group_rows(group_cols, n, self._scratch)
        k = len(reps)
        if k != n:
            block = ring.sum_segments(block, gids, k)
            group_cols = [col[reps] for col in group_cols]
        mask = ring.is_zero_many(block)
        if mask.any():
            keep = np.flatnonzero(~mask)
            block = ring.take(block, keep)
            group_cols = [col[keep] for col in group_cols]
            k = len(keep)
        keys = _keys_of(group_cols, k)
        if timer:
            stats.record_stage("group", timer() - t0)
        return group_cols, keys, block, k


def compile_fused_path(engine, relation_name: str) -> Optional[FusedPath]:
    """Lower one relation's columnar ladder into a fused kernel.

    Pure function of the static view tree, compiled once at engine
    construction. Returns ``None`` when a lifting function on the path
    lacks bulk metadata — exactly the condition under which the
    interpreted columnar ladder also declines the path.
    """
    leaf, leaf_lifts, inner = engine._paths[relation_name]
    schema = tuple(engine.query.schema_of(relation_name).attributes)
    leaf_lift_items = []
    for attr, fn in leaf_lifts.items():
        if not bulk_liftable(fn):
            return None
        leaf_lift_items.append((schema.index(attr), fn))
    leaf_group_positions = _positions(schema, tuple(leaf.key))
    schema_now = tuple(leaf.key)
    probe_steps = engine.probe_plan.path_steps[relation_name]
    steps: List[_FusedStep] = []
    for position, (view, lifts) in enumerate(inner):
        probes = []
        for step in probe_steps[position]:
            sibling_key = engine.tree.views[step.sibling].key
            hook_positions = _positions(schema_now, tuple(step.attrs))
            keep_positions = tuple(
                i for i, attr in enumerate(sibling_key) if attr not in schema_now
            )
            probes.append(
                _FusedProbe(
                    step.sibling, tuple(step.attrs), hook_positions, keep_positions
                )
            )
            schema_now = schema_now + tuple(sibling_key[i] for i in keep_positions)
        lift_items = []
        for attr, fn in lifts.items():
            if not bulk_liftable(fn):
                return None
            lift_items.append((schema_now.index(attr), fn))
        steps.append(
            _FusedStep(
                view.name,
                tuple(probes),
                tuple(lift_items),
                _positions(schema_now, tuple(view.key)),
            )
        )
        schema_now = tuple(view.key)
    return FusedPath(
        leaf.name, tuple(leaf_lift_items), leaf_group_positions, tuple(steps)
    )
