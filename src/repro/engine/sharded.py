"""Sharded multi-core ingestion: one F-IVM engine per worker process.

The paper's C++ system sustains high update rates with compiled triggers;
a pure-Python reproduction is bounded by the interpreter on one core.
:class:`ShardedEngine` recovers throughput by horizontal partitioning:
the coordinator hash-routes every delta on the shard attributes a
:class:`~repro.viewtree.builder.ShardPlan` derives from the view tree,
each shard runs a full :class:`~repro.engine.fivm.FIVMEngine` over its
slice of the database, and the query result is the ring-sum of the
per-shard root views (multilinearity of the join makes that exact — see
:mod:`repro.data.sharding`).

Two backends extend one :class:`ShardBackend` protocol:

- ``"serial"`` keeps the shard engines in-process. No parallelism, but
  identical routing/merging semantics — this is what the determinism
  tests sweep and the fallback on platforms without ``fork``.
- ``"process"`` forks one worker per shard over a duplex pipe each, with
  the *data plane* delegated to a :class:`~repro.engine.transport`
  implementation selected by :class:`~repro.config.EngineConfig`:

  * ``transport="shm"`` (the default where available) moves payload
    bytes through per-shard shared-memory rings — the pipes carry only
    control messages (op, buffer generation, block layout) — and runs
    ``result()``/``export_state()`` gathers *tree-wise*: workers merge
    pairwise across shards and the coordinator reads one final blob,
    so gather cost grows logarithmically rather than linearly in the
    shard count.
  * ``transport="pipe"`` is the historical wire: deltas pickled through
    the pipe in columnar form (``columnar_transport=False`` restores
    the dict form for ablation), gathers fanned in and merged on the
    coordinator.

  Applies are fire-and-forget either way, so the coordinator routes
  batch *n+1* while workers maintain batch *n*; ``result()`` /
  ``shard_stats()`` / ``memory_report()`` / ``export_state()`` are
  synchronous fan-out/fan-in points. Fork start is required because
  payload plans hold lifting closures that cannot cross a spawn boundary
  — workers inherit the query object instead of unpickling it.

Every merge path — the serial backend, the pipe coordinator and the shm
worker tree — folds per-shard parts in the *same* pairwise structure
(:func:`pairwise_fold`), so all transports produce bit-identical results
for any ring, floating point included.

Checkpoints are shard-count portable: ``export_state`` merges per-shard
view snapshots into the global normal form a plain
:class:`~repro.engine.fivm.FIVMEngine` would export (ring-additivity of
the per-shard views makes the merge exact), and ``import_state``
re-partitions that normal form through the :class:`ShardRouter`, so a
snapshot written at N shards restores at any M — including M=1, a plain
F-IVM engine, and across the serial/process backend switch.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import EngineConfig, resolve_engine_config
from repro.data.columnar import ColumnarDelta
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.sharding import ShardRouter, shard_hash
from repro.engine.base import EngineStatistics, MaintenanceEngine
from repro.engine.fivm import FIVMEngine
from repro.engine.transport import (
    PipeTransport,
    ShardTransport,
    SharedMemoryTransport,
    _ShmOverflow,
    resolve_transport,
)
from repro.errors import EngineError
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.viewtree.builder import ShardPlan, build_shard_plan, build_view_tree

__all__ = [
    "ShardedEngine",
    "ShardBackend",
    "available_backends",
    "resolve_backend",
    "pairwise_fold",
]

BACKENDS = ("serial", "process")


def available_backends() -> Tuple[str, ...]:
    """Backends usable on this platform (``process`` needs ``fork``)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return BACKENDS
    return ("serial",)


def resolve_backend(backend: str, shards: int) -> str:
    """Resolve ``"auto"`` and validate an explicit choice."""
    if backend == "auto":
        if shards > 1 and "process" in available_backends():
            return "process"
        return "serial"
    if backend not in BACKENDS:
        raise EngineError(
            f"unknown shard backend {backend!r}; expected one of "
            f"{('auto',) + BACKENDS}"
        )
    if backend == "process" and "process" not in available_backends():
        raise EngineError(
            "the process backend needs the fork start method "
            "(unavailable on this platform); use backend='serial'"
        )
    return backend


# ----------------------------------------------------------------------
# Pairwise merging — one fold structure for every transport
# ----------------------------------------------------------------------


def pairwise_fold(parts: List[Any], combine: Callable[[Any, Any], Any]) -> Any:
    """Fold ``parts`` pairwise: adjacent pairs combine, odd tails pass up.

    This is exactly the reduction order of the shm worker tree (shard
    ``s+step`` merges into shard ``s`` round by round), so folding
    per-shard results with it on the coordinator — as the serial and
    pipe paths do — yields bit-identical floats to the tree merge.
    ``combine`` may mutate and return its left argument; callers own the
    leaf copies.
    """
    if not parts:
        return None
    while len(parts) > 1:
        folded = []
        for i in range(0, len(parts) - 1, 2):
            folded.append(combine(parts[i], parts[i + 1]))
        if len(parts) % 2:
            folded.append(parts[-1])
        parts = folded
    return parts[0]


def _merge_root_pair(left: Dict, right: Dict, key, ring) -> Dict:
    """Ring-add two root-view dicts (mutates and returns ``left``)."""
    mine = Relation(key, ring)
    mine.data = left
    theirs = Relation(key, ring)
    theirs.data = right
    mine.add_inplace(theirs)
    return mine.data


def _merge_root_states(parts: List[Dict], key, ring) -> Dict:
    """Pairwise ring-sum of per-shard root-view dicts (leaf copies)."""
    return pairwise_fold(
        [dict(part) for part in parts],
        lambda a, b: _merge_root_pair(a, b, key, ring),
    ) or {}


def _merge_views_pair(left, right, keys, ring, broadcast_views) -> Dict:
    """Merge two per-shard ``{view name -> data}`` maps view by view.

    Views over broadcast relations only are identical replicas — the
    lower shard's copy is kept instead of summed (summing would
    double-count). Mutates and returns ``left``.
    """
    for name, data in left.items():
        if name in broadcast_views:
            continue
        left[name] = _merge_root_pair(data, right[name], keys[name], ring)
    return left


def _merge_view_states(parts, keys, ring, broadcast_views) -> Dict[str, Dict]:
    """Pairwise merge of per-shard view-snapshot maps (leaf copies)."""
    return pairwise_fold(
        [{name: dict(data) for name, data in part.items()} for part in parts],
        lambda a, b: _merge_views_pair(a, b, keys, ring, broadcast_views),
    ) or {}


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class ShardBackend:
    """What the coordinator needs from a set of shard engines.

    Both backends seed their shards either from per-shard ``databases``
    (initialize) or from per-shard ``states`` (checkpoint restore) —
    exactly one of the two — and a closed backend refuses every
    operation with the same descriptive :class:`EngineError` instead of
    dying on its emptied engine/connection lists. Subclasses implement
    ``apply``/``results``/``stats``/``memory``/``export_states``/
    ``close``.
    """

    name = "abstract"

    def __init__(self):
        self.closed = False

    @staticmethod
    def _check_seeds(databases, states) -> List:
        if (databases is None) == (states is None):
            raise EngineError(
                "shard backend needs either databases or states, not both"
            )
        return databases if states is None else states

    def _require_open(self) -> None:
        if self.closed:
            raise EngineError(
                "shard backend is closed; initialize() (or import_state()) "
                "the engine again before using it"
            )

    def _raise_gather_errors(self, errors: List[str], dead: bool) -> None:
        """Surface per-shard failures as one joined :class:`EngineError`.

        When a worker died (``dead``) the request/reply alignment cannot
        be recovered, so the backend tears itself down first; otherwise
        it stays usable after the error.
        """
        if errors:
            if dead:
                self.close()
            raise EngineError("; ".join(errors))


class _SerialBackend(ShardBackend):
    """All shard engines live in the coordinator process."""

    name = "serial"

    def __init__(
        self,
        factory: Callable[[], MaintenanceEngine],
        databases: Optional[List[Database]] = None,
        states: Optional[List[dict]] = None,
    ):
        super().__init__()
        seeds = self._check_seeds(databases, states)
        self.engines = [factory() for _ in seeds]
        if states is None:
            for engine, database in zip(self.engines, databases):
                engine.initialize(database)
        else:
            for engine, state in zip(self.engines, states):
                engine.import_state(state)

    def apply(self, shard: int, relation_name: str, delta: Relation) -> None:
        self._require_open()
        self.engines[shard].apply(relation_name, delta)

    def advance(self, ticks: int) -> None:
        self._require_open()
        for engine in self.engines:
            engine.advance_decay(ticks)

    def results(self) -> List[Dict]:
        self._require_open()
        return [engine.result().data for engine in self.engines]

    def stats(self) -> List[Dict[str, int]]:
        self._require_open()
        return [engine.stats.snapshot() for engine in self.engines]

    def memory(self) -> List[Dict[str, Dict[str, int]]]:
        self._require_open()
        return [engine.memory_report() for engine in self.engines]

    def export_states(self) -> List[dict]:
        self._require_open()
        return [engine.export_state() for engine in self.engines]

    def close(self) -> None:
        self.engines = []
        self.closed = True


def _serve_tree(conn, endpoint, engine, op, seq, failure, broadcast_views):
    """One worker's side of a tree gather; returns the new parked failure.

    A parked failure (or a merge-partner failure) poisons this worker's
    write round — so partners waiting on it abort fast instead of timing
    out — and replies ``("error", ...)``. A blob that does not fit the
    up block replies ``("overflow", needed bytes)`` without parking: the
    coordinator grows the blocks and retries the whole gather.
    """
    if failure is None and endpoint is None:  # pragma: no cover - defensive
        failure = f"shard worker got tree op {op!r} without an shm endpoint"
    if failure is not None:
        try:
            endpoint.poison(seq)
        except Exception:
            pass
        conn.send(("error", failure))
        return failure
    try:
        ring = engine.tree.plan.ring
        if op == "tresult":
            key = engine.tree.root.key
            payload = dict(engine.result().data)

            def combine(mine, theirs):
                return _merge_root_pair(mine, theirs, key, ring)

        else:  # "texport"
            keys = {
                name: node.key for name, node in engine.tree.views.items()
            }
            payload = {
                name: dict(data)
                for name, data in engine._export_payload()["views"].items()
            }

            def combine(mine, theirs):
                return _merge_views_pair(
                    mine, theirs, keys, ring, broadcast_views
                )

        endpoint.tree_merge(seq, payload, combine)
        conn.send(("ok", "done"))
        return None
    except _ShmOverflow as exc:
        try:
            endpoint.poison(seq, needed=exc.needed)
        except Exception:
            pass
        conn.send(("overflow", exc.needed))
        return failure
    except Exception as exc:
        message = f"shard worker failed on {op!r}: {exc!r}"
        try:
            endpoint.poison(seq)
        except Exception:
            pass
        conn.send(("error", message))
        return message


def _shard_worker(
    conn, factory, database, state=None, endpoint=None, broadcast_views=(),
    inherited=(),
) -> None:
    """Worker loop: build the engine, then serve the coordinator's pipe.

    The engine is seeded from ``state`` (checkpoint restore) when given,
    otherwise from ``database``. Every synchronous reply is
    ``("ok", payload)``, ``("error", message)`` or — for tree gathers —
    ``("overflow", bytes)``; applies are fire-and-forget, so an apply
    failure is parked and surfaced at the next synchronous exchange. A
    parked worker still services the transport control plane: shared-
    memory deltas are acknowledged (``mark_consumed``) so the
    coordinator's ring flow control never deadlocks on a failed shard,
    and ``remap``/``remap_up`` segment swaps are honoured.

    ``inherited`` holds the coordinator-side pipe ends this fork copied;
    they are closed immediately so that a dying coordinator delivers EOF
    to every worker (a worker holding a duplicate of its own upstream
    end would otherwise block on ``recv`` forever).
    """
    for other in inherited:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed
            pass
    try:
        engine = factory()
        if state is not None:
            engine.import_state(state)
        else:
            engine.initialize(database)
        schemas = {
            name: engine.query.schema_of(name).attributes
            for name in engine.query.relation_names
        }
    except Exception as exc:
        conn.send(("error", f"shard initialization failed: {exc!r}"))
        conn.close()
        return
    conn.send(("ok", "ready"))
    failure: Optional[str] = None
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        op = message[0]
        if op == "stop":
            break
        if op == "remap":
            # Fire-and-forget segment swap — no reply, and honoured even
            # when a failure is parked (the coordinator already switched).
            try:
                endpoint.remap_down(message[1], message[2])
            except Exception as exc:  # pragma: no cover - defensive
                failure = failure or f"shard worker failed on 'remap': {exc!r}"
            continue
        if op == "remap_up":
            try:
                endpoint.remap_up(message[1], message[2])
            except Exception as exc:  # pragma: no cover - defensive
                failure = (
                    failure or f"shard worker failed on 'remap_up': {exc!r}"
                )
            continue
        if op == "tresult" or op == "texport":
            failure = _serve_tree(
                conn, endpoint, engine, op, message[1], failure,
                broadcast_views,
            )
            continue
        is_apply = (
            op == "apply" or op == "applyc" or op == "applyd"
            or op == "advance"
        )
        try:
            if failure is not None:
                if op == "applyd":
                    # Keep the ring flow control moving even while parked.
                    try:
                        endpoint.mark_consumed(message[2])
                    except Exception:
                        pass
                elif not is_apply:
                    conn.send(("error", failure))
            elif op == "apply":
                relation_name, data = message[1], message[2]
                delta = Relation(schemas[relation_name], name=relation_name)
                delta.data = data
                engine.apply(relation_name, delta)
            elif op == "applyc":
                # Columnar wire form: rebuild the dict delta once here;
                # the columnar form stays attached, so the worker's own
                # columnar maintenance path reuses it without re-deriving.
                relation_name, columns, counts = message[1], message[2], message[3]
                delta = ColumnarDelta(
                    schemas[relation_name], counts, columns=columns,
                    name=relation_name,
                ).to_relation()
                engine.apply(relation_name, delta)
            elif op == "applyd":
                # Shared-memory wire form: the pipe carried only the
                # generation and block layout; the bytes are in the ring.
                relation_name, generation, layout = (
                    message[1], message[2], message[3]
                )
                delta = endpoint.read_delta(
                    schemas[relation_name], relation_name, generation, layout
                )
                engine.apply(relation_name, delta)
            elif op == "advance":
                # Fire-and-forget like applies: the pipe is FIFO, so the
                # tick lands after every delta routed before it — all
                # shards advance their decay clocks in lockstep.
                engine.advance_decay(message[1])
            elif op == "result":
                conn.send(("ok", engine.result().data))
            elif op == "stats":
                conn.send(("ok", engine.stats.snapshot()))
            elif op == "memory":
                conn.send(("ok", engine.memory_report()))
            elif op == "export":
                conn.send(("ok", engine.export_state()))
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except Exception as exc:
            failure = f"shard worker failed on {op!r}: {exc!r}"
            if not is_apply:
                conn.send(("error", failure))
    if endpoint is not None:
        endpoint.close()
    conn.close()


class _ProcessBackend(ShardBackend):
    """One forked worker process per shard, one duplex pipe each.

    The pipe is the *control plane*; the injected
    :class:`~repro.engine.transport.ShardTransport` is the data plane
    (see the module docstring). The pipe protocol is strictly one reply
    per synchronous request, so gathers must *always* drain every
    fanned-out reply — even when a shard reports an error — or the next
    gather would read the stale replies of the previous op and silently
    return results for the wrong request.
    """

    name = "process"

    #: How many grow-and-retry rounds a tree gather may take before the
    #: backend gives up (each round at least doubles the up blocks).
    MAX_GATHER_ATTEMPTS = 4

    def __init__(
        self,
        factory: Callable[[], MaintenanceEngine],
        databases: Optional[List[Database]] = None,
        states: Optional[List[dict]] = None,
        transport: Optional[ShardTransport] = None,
        broadcast_views: Tuple[str, ...] = (),
    ):
        super().__init__()
        seeds = self._check_seeds(databases, states)
        context = multiprocessing.get_context("fork")
        self.transport = transport if transport is not None else PipeTransport()
        self.connections = []
        self.processes = []
        try:
            self.transport.setup(len(seeds))
            for shard, seed in enumerate(seeds):
                parent_conn, child_conn = context.Pipe(duplex=True)
                database, state = (
                    (seed, None) if states is None else (None, seed)
                )
                process = context.Process(
                    target=_shard_worker,
                    args=(
                        child_conn, factory, database, state,
                        self.transport.worker_endpoint(shard),
                        broadcast_views,
                        (*self.connections, parent_conn),
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.connections.append(parent_conn)
                self.processes.append(process)
            for shard, conn in enumerate(self.connections):
                status, payload = self._receive(shard, conn)
                if status != "ok":
                    raise EngineError(f"shard {shard}: {payload}")
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------

    def apply(self, shard: int, relation_name: str, delta: Relation) -> None:
        self._require_open()
        try:
            self.connections[shard].send(("apply", relation_name, delta.data))
        except (BrokenPipeError, OSError) as exc:
            raise EngineError(f"shard {shard} worker is gone: {exc!r}") from None

    def apply_delta(self, shard: int, relation_name: str, delta) -> None:
        """Fire-and-forget apply through the transport's data plane.

        ``delta`` is whatever the transport asked for
        (``wants_columnar``): a :class:`ColumnarDelta` for the columnar
        pipe wire and the shm rings, a :class:`Relation` otherwise.
        """
        self._require_open()
        try:
            self.transport.send_delta(
                self.connections[shard], shard, relation_name, delta,
                alive=self.processes[shard].is_alive,
            )
        except (BrokenPipeError, OSError) as exc:
            raise EngineError(f"shard {shard} worker is gone: {exc!r}") from None

    def advance(self, ticks: int) -> None:
        """Fire-and-forget decay-clock broadcast to every shard.

        Rides the control pipe, which is FIFO per worker even under the
        shm transport (data-plane applies announce themselves on the same
        pipe), so every shard observes the tick at the same stream
        position.
        """
        self._require_open()
        for shard, conn in enumerate(self.connections):
            try:
                conn.send(("advance", ticks))
            except (BrokenPipeError, OSError) as exc:
                raise EngineError(
                    f"shard {shard} worker is gone: {exc!r}"
                ) from None

    def results(self) -> List[Dict]:
        if self.transport.tree_gather:
            return [self._gather_tree("tresult")]
        return self._gather("result")

    def stats(self) -> List[Dict[str, int]]:
        return self._gather("stats")

    def memory(self) -> List[Dict[str, Dict[str, int]]]:
        return self._gather("memory")

    def export_states(self) -> List[dict]:
        if self.transport.tree_gather:
            return [{"views": self._gather_tree("texport")}]
        return self._gather("export")

    def close(self) -> None:
        for conn in self.connections:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)
        for conn in self.connections:
            conn.close()
        self.connections = []
        self.processes = []
        # Workers are down (or being torn down): unlink every segment.
        self.transport.close()
        self.closed = True

    # ------------------------------------------------------------------

    def _gather(self, op: str) -> List[Any]:
        """Fan ``op`` out to every shard, then fan every reply back in.

        Error replies (a parked apply failure, an op that raised) do not
        stop the fan-in: the remaining replies are drained first so the
        pipes stay request/reply aligned, then one :class:`EngineError`
        summarizing every failed shard is raised. The backend stays usable
        after a drained error; if a worker died mid-gather (EOF/broken
        pipe) the pipes cannot be realigned, so the backend tears itself
        down and subsequent ops raise the closed error.
        """
        self._require_open()
        sent: List[Tuple[int, Any]] = []
        errors: List[str] = []
        dead = False
        for shard, conn in enumerate(self.connections):
            try:
                conn.send((op,))
                sent.append((shard, conn))
            except (BrokenPipeError, OSError) as exc:
                errors.append(f"shard {shard} worker is gone: {exc!r}")
                dead = True
        results: List[Any] = [None] * len(self.connections)
        for shard, conn in sent:
            try:
                status, payload = self._receive(shard, conn)
            except EngineError as exc:
                errors.append(str(exc))
                dead = True
                continue
            if status != "ok":
                errors.append(f"shard {shard}: {payload}")
            else:
                results[shard] = payload
        self._raise_gather_errors(errors, dead)
        return results

    def _gather_tree(self, op: str) -> Dict:
        """Run one tree-wise gather; returns the final merged payload.

        The workers merge pairwise among themselves through the up
        blocks; the coordinator only fans out ``(op, seq)``, drains one
        acknowledgement per shard (keeping the pipes aligned exactly as
        :meth:`_gather` does) and reads shard 0's final blob. Overflow
        acknowledgements grow the up blocks and retry the whole gather
        under a fresh sequence number.
        """
        self._require_open()
        for _attempt in range(self.MAX_GATHER_ATTEMPTS):
            # A dead partner would stall the worker-side merge dance, so
            # check liveness before fanning out rather than after.
            for shard, process in enumerate(self.processes):
                if not process.is_alive():
                    self.close()
                    raise EngineError(
                        f"shard {shard} worker died (process exited); "
                        "shard backend closed"
                    )
            seq = self.transport.new_sequence()
            sent: List[Tuple[int, Any]] = []
            errors: List[str] = []
            dead = False
            overflow = 0
            for shard, conn in enumerate(self.connections):
                try:
                    conn.send((op, seq))
                    sent.append((shard, conn))
                except (BrokenPipeError, OSError) as exc:
                    errors.append(f"shard {shard} worker is gone: {exc!r}")
                    dead = True
            for shard, conn in sent:
                try:
                    status, payload = self._receive(shard, conn)
                except EngineError as exc:
                    errors.append(str(exc))
                    dead = True
                    continue
                if status == "overflow":
                    overflow = max(overflow, int(payload))
                elif status != "ok":
                    errors.append(f"shard {shard}: {payload}")
            self._raise_gather_errors(errors, dead)
            if overflow:
                names, up_bytes = self.transport.grow_up(overflow)
                for shard, conn in enumerate(self.connections):
                    try:
                        conn.send(("remap_up", names, up_bytes))
                    except (BrokenPipeError, OSError) as exc:
                        self._raise_gather_errors(
                            [f"shard {shard} worker is gone: {exc!r}"],
                            dead=True,
                        )
                continue
            return self.transport.read_final(seq)
        raise EngineError(  # pragma: no cover - would need pathological growth
            f"tree gather {op!r} still overflowed after "
            f"{self.MAX_GATHER_ATTEMPTS} block-growth attempts"
        )

    def _receive(self, shard: int, conn) -> Tuple[str, Any]:
        """One raw ``(status, payload)`` reply; EOF means the worker died."""
        try:
            return conn.recv()
        except EOFError:
            raise EngineError(
                f"shard {shard} worker died without replying"
            ) from None


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


class ShardedEngine(MaintenanceEngine):
    """Coordinator over ``shards`` F-IVM engines, each owning a slice.

    Parameters
    ----------
    query, order:
        As for :class:`~repro.engine.fivm.FIVMEngine`; every shard builds
        the same tree over its partition.
    config:
        An :class:`~repro.config.EngineConfig` carrying every tunable —
        shard count, backend, transport, shard attributes and the
        per-shard F-IVM options. The legacy keyword arguments
        (``shards=``, ``backend=``, ``use_columnar=``, …) still work
        through a deprecation shim; when neither is given the engine
        defaults to two shards.

    The coordinator's own ``stats`` count what was routed (batches,
    updates, tuples); per-shard maintenance counters are aggregated on
    demand by :meth:`shard_stats` / :meth:`aggregate_stats`. Use as a
    context manager (or call :meth:`close`) to stop worker processes.
    """

    strategy = "fivm-sharded"

    #: Legacy constructor kwargs accepted by the deprecation shim.
    LEGACY_OPTIONS = (
        "shards", "shard_attrs", "backend", "transport",
        "use_view_index", "adaptive_probe", "use_columnar", "use_fused",
        "columnar_transport",
    )

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        config: Optional[EngineConfig] = None,
        **legacy,
    ):
        super().__init__(query)
        config = resolve_engine_config(
            config, legacy, "ShardedEngine", self.LEGACY_OPTIONS,
            defaults={"shards": 2},
        )
        self.config = config
        self.shards = config.shards
        self.order = order
        self.use_view_index = config.use_view_index
        self.adaptive_probe = config.adaptive_probe
        self.use_columnar = config.use_columnar
        self.use_fused = config.use_fused
        self.columnar_transport = config.columnar_transport
        self.tree = build_view_tree(query, order=order)
        self.shard_plan: ShardPlan = build_shard_plan(
            self.tree, attrs=config.shard_attrs
        )
        schemas = {
            name: query.schema_of(name).attributes
            for name in query.relation_names
        }
        self.router = ShardRouter(schemas, self.shard_plan.attrs, self.shards)
        if set(self.router.routed) != set(self.shard_plan.routed):
            # Both derive "contains all shard attrs" independently; if the
            # criteria ever diverge, fail loudly rather than route deltas
            # differently from what the plan (and describe()) reports.
            raise EngineError(
                f"shard plan routed {self.shard_plan.routed!r} but the "
                f"router derived {self.router.routed!r}"
            )
        self.backend_name = resolve_backend(config.backend, self.shards)
        self.transport_name = resolve_transport(
            config.transport, self.backend_name
        )
        #: Views whose subtree touches broadcast relations only — exact
        #: replicas on every shard, copied (not summed) by every merge.
        view_relations = self._view_relations()
        broadcast = set(self.router.broadcast)
        self._broadcast_only_views = tuple(sorted(
            name for name in self.tree.views
            if view_relations[name] <= broadcast
        ))
        self._backend = None
        self._was_closed = False

    # ------------------------------------------------------------------

    def _engine_factory(self) -> Callable[[], FIVMEngine]:
        # Capture plain locals (not self): the closure crosses the fork
        # boundary into every worker process.
        query, order = self.query, self.order
        shard_config = EngineConfig(
            use_view_index=self.use_view_index,
            adaptive_probe=self.adaptive_probe,
            use_columnar=self.use_columnar,
            use_fused=self.use_fused,
            # Every shard runs the same decay clock; the coordinator
            # broadcasts ticks so they stay in lockstep.
            decay=self.config.decay,
        )

        def factory() -> FIVMEngine:
            return FIVMEngine(query, order=order, config=shard_config)

        return factory

    def _make_transport(self) -> ShardTransport:
        if self.transport_name == "shm":
            return SharedMemoryTransport()
        return PipeTransport(columnar=self.columnar_transport)

    def _make_backend(self, **seeds) -> None:
        factory = self._engine_factory()
        if self.backend_name == "process":
            self._backend = _ProcessBackend(
                factory,
                transport=self._make_transport(),
                broadcast_views=self._broadcast_only_views,
                **seeds,
            )
        else:
            self._backend = _SerialBackend(factory, **seeds)
        self._was_closed = False

    def initialize(self, database: Database) -> None:
        self.close()
        self._make_backend(databases=self.router.partition_database(database))
        self.stats = EngineStatistics()
        self._initialized = True
        self._refresh_view_sizes()

    def apply(self, relation_name: str, delta: Relation) -> None:
        self._require_initialized()
        self._check_delta(relation_name, delta)
        if not delta.data:
            return
        self.stats.record_batch(delta)
        if (
            self.backend_name == "process"
            and self._backend.transport.wants_columnar
        ):
            # Route and ship in columnar form: rows hash exactly as in
            # split(), but no per-shard key-tuple dict is built and the
            # data plane carries columns (pickled pipe lists or raw
            # shared-memory blocks) instead of pickled dicts.
            for shard, sub in self.router.split_columnar(
                relation_name, delta.columnar()
            ):
                self._backend.apply_delta(shard, relation_name, sub)
            return
        for shard, sub_delta in self.router.split(relation_name, delta):
            self._backend.apply(shard, relation_name, sub_delta)

    def result(self) -> Relation:
        """Ring-additive merge of the per-shard root views.

        Shard keys never collide for views keyed below the shard
        attributes, and where they do collide (e.g. the empty root key of
        a full aggregate) the ring's addition combines them — the same
        operation maintenance itself uses, so the merged result is
        exactly the unsharded engine's. Under the shm transport the merge
        already happened tree-wise across the workers and the backend
        returns a single part; either way the fold structure is
        :func:`pairwise_fold`, so the bits match across transports.
        """
        self._require_initialized()
        root = self.tree.root
        ring = self.tree.plan.ring
        merged = Relation(root.key, ring, name=root.name)
        merged.data = _merge_root_states(
            self._backend.results(), root.key, ring
        )
        return merged

    # ------------------------------------------------------------------
    # Serving: merge-on-publish
    # ------------------------------------------------------------------

    def publish(
        self,
        event_offset: Optional[int] = None,
        window: Optional[Tuple[int, int]] = None,
    ):
        """Publish the ring-additive merge of the per-shard root views.

        Merge-on-publish: the gather in :meth:`result` is the
        synchronization barrier that waits for all in-flight
        fire-and-forget applies, so the published snapshot covers every
        delta routed before this call — the same consistency the
        unsharded engine gets for free.

        Failure paths carry the PR-4 hardening into serving: a closed
        engine raises the descriptive closed error, and a worker that
        died or failed mid-merge surfaces as an :class:`EngineError`
        naming the shard, wrapped with publish context instead of a bare
        pipe error — no torn snapshot is ever swapped in (the store only
        updates after a successful merge).
        """
        self._require_initialized()
        try:
            return super().publish(event_offset=event_offset, window=window)
        except EngineError as exc:
            raise EngineError(f"publish failed: {exc}") from None

    # ------------------------------------------------------------------
    # Decay (exponential forgetting)
    # ------------------------------------------------------------------

    def _decay_interval(self) -> int:
        spec = self.config.decay_spec()
        return spec.every if spec is not None else 0

    def advance_decay(self, ticks: int = 1) -> None:
        """Broadcast a decay tick to every shard (lockstep clocks).

        Fire-and-forget like applies: the next synchronous gather
        (``result``/``publish``/``export_state``) is the barrier that
        guarantees every shard observed the tick.
        """
        if self.config.decay is None:
            super().advance_decay(ticks)
        self._require_initialized()
        self._backend.advance(ticks)
        self.stats.decay_ticks += ticks

    # ------------------------------------------------------------------

    def shard_stats(self) -> List[Dict[str, int]]:
        """Per-shard maintenance counter snapshots, in shard order."""
        self._require_initialized()
        return self._backend.stats()

    def aggregate_stats(self) -> Dict[str, int]:
        """Summed per-shard counters (``view:*`` entries sum entry counts).

        Also refreshes the coordinator's ``stats.view_sizes`` so memory
        accounting reflects the shards' current materializations.
        """
        totals: Dict[str, int] = {}
        for snapshot in self.shard_stats():
            for key, value in snapshot.items():
                if key.startswith("decay_"):
                    # Shards tick in lockstep, so summing would report
                    # shards x the logical clock; the max is the truth.
                    totals[key] = max(totals.get(key, 0), int(value))
                else:
                    totals[key] = totals.get(key, 0) + int(value)
        self.stats.view_sizes = {
            key[len("view:"):]: value
            for key, value in totals.items()
            if key.startswith("view:")
        }
        return totals

    def memory_report(self) -> Dict[str, Dict[str, int]]:
        """Per-view totals across shards (entries, payload weight, indexes)."""
        self._require_initialized()
        merged: Dict[str, Dict[str, int]] = {}
        for report in self._backend.memory():
            for view_name, entry in report.items():
                target = merged.setdefault(view_name, {})
                for field, value in entry.items():
                    target[field] = target.get(field, 0) + int(value)
        return merged

    def total_view_tuples(self) -> int:
        return sum(
            entry.get("entries", 0) for entry in self.memory_report().values()
        )

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop shard workers (idempotent); the engine needs
        :meth:`initialize` (or :meth:`import_state`) again afterwards."""
        if self._backend is not None:
            self._backend.close()
            self._backend = None
            self._was_closed = True
        self._initialized = False

    def _require_initialized(self) -> None:
        if not self._initialized and self._was_closed:
            raise EngineError(
                "ShardedEngine is closed; call initialize() or "
                "import_state() to reopen it"
            )
        super()._require_initialized()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    #: Sharded snapshots are written in the *global* normal form — the
    #: same "views" payload a plain FIVMEngine over the whole database
    #: would export — so FIVM and sharded engines of any shard count
    #: restore each other's checkpoints.
    state_payload = "views"

    def config_provenance(self) -> Dict[str, Any]:
        """The config recorded into exports, with backend/transport
        resolved to what actually ran (``"auto"`` would say nothing)."""
        data = self.config.to_dict()
        data["backend"] = self.backend_name
        data["transport"] = self.transport_name
        return data

    def _export_payload(self) -> dict:
        """Gather per-shard view snapshots and merge them ring-additively.

        Views whose subtree touches a routed relation partition (or sum)
        across shards, so their per-shard copies combine with the ring's
        addition — multilinearity of the join makes the merged view equal
        the unsharded engine's, the same argument behind :meth:`result`.
        Views over broadcast relations only are replicated identically on
        every shard, so one copy is taken instead of a sum. Under the shm
        transport the workers run this merge tree-wise among themselves
        (same pairwise fold, same bits) and the backend returns the
        single merged part.

        Worker failures during the gather surface with export context
        (same hardening as :meth:`publish`): the pipes are drained and
        realigned by the backend, and the error names the failed shard.
        """
        try:
            states = self._backend.export_states()
        except EngineError as exc:
            raise EngineError(f"export_state failed: {exc}") from None
        ring = self.tree.plan.ring
        keys = {name: node.key for name, node in self.tree.views.items()}
        views = _merge_view_states(
            [state["views"] for state in states],
            keys, ring, set(self._broadcast_only_views),
        )
        return {"views": views, "source_shards": self.shards}

    def _import_payload(self, state) -> None:
        """Restore a "views" snapshot, re-partitioned to this shard count.

        The snapshot's global views are split through the shard router:
        views keyed on all shard attributes hash-partition entry by entry
        (every base tuple contributing to an entry shares the entry's
        shard-attribute values, so the entry belongs to exactly one
        shard); views over broadcast relations only are replicated; the
        remaining views — aggregates *above* the shard attributes, e.g.
        the root — are recomputed per shard from their already-partitioned
        children, which is exact by definition of the view tree. A
        checkpoint written at N shards therefore restores at any M
        (including M=1 and into a plain FIVMEngine) with results
        identical to uninterrupted ingestion.
        """
        views = state["views"]
        missing = set(self.tree.views) - set(views)
        unexpected = set(views) - set(self.tree.views)
        if missing or unexpected:
            raise EngineError(
                f"snapshot does not match the view tree "
                f"(missing={sorted(missing)}, unexpected={sorted(unexpected)})"
            )
        shard_views = self._partition_views(views)
        header = {
            "format_version": self.STATE_FORMAT_VERSION,
            "payload": FIVMEngine.state_payload,
            "strategy": FIVMEngine.strategy,
            "query": self.query.name,
        }
        shard_states = [
            # Per-shard maintenance counters restart at zero; the
            # coordinator's restored stats carry the logical stream totals.
            dict(header, views=per_shard, stats={})
            for per_shard in shard_views
        ]
        self.close()
        self._make_backend(states=shard_states)

    def _after_restore(self) -> None:
        self._refresh_view_sizes()

    def _view_relations(self) -> Dict[str, set]:
        """``view name -> base relations in its subtree`` (bottom-up)."""
        relations: Dict[str, set] = {}
        for node in self.tree.all_views():
            covered = set()
            if node.relation is not None:
                covered.add(node.relation)
            for child in node.children:
                covered |= relations[child.name]
            relations[node.name] = covered
        return relations

    def _partition_views(self, views: Dict[str, Dict]) -> List[Dict[str, Dict]]:
        """Split global view materializations into per-shard slices."""
        ring = self.tree.plan.ring
        attrs = self.router.attrs
        broadcast_only = set(self._broadcast_only_views)
        per_shard: List[Dict[str, Dict]] = [{} for _ in range(self.shards)]
        for node in self.tree.all_views():  # children before parents
            name = node.name
            data = views[name]
            if name in broadcast_only:
                # Identical replica on every shard (and a copy per shard:
                # workers mutate their views independently afterwards).
                for shard in range(self.shards):
                    per_shard[shard][name] = dict(data)
            elif set(attrs) <= set(node.key):
                positions = tuple(node.key.index(attr) for attr in attrs)
                buckets: List[Dict] = [{} for _ in range(self.shards)]
                if self.shards == 1:
                    buckets[0] = dict(data)
                else:
                    shards = self.shards
                    for key, payload in data.items():
                        hook = tuple(key[i] for i in positions)
                        buckets[shard_hash(hook) % shards][key] = payload
                for shard in range(self.shards):
                    per_shard[shard][name] = buckets[shard]
            elif node.is_leaf:  # pragma: no cover - defensive
                # Unreachable for valid shard plans: a routed relation
                # contains every shard attribute, and shard attributes are
                # order variables, hence part of the leaf key.
                raise EngineError(
                    f"cannot re-partition snapshot: leaf view {name!r} of "
                    f"routed relation {node.relation!r} lacks shard "
                    f"attributes {attrs!r} in its key {node.key!r}"
                )
            else:
                # The shard attributes were marginalized at or below this
                # node, so per-shard values are not determined by the key.
                # Recompute from the already-partitioned children — the
                # same join+marginalize step evaluation uses, exact per
                # shard and cheap: these views sit at/above the shard
                # variable, the smallest materializations of the tree.
                lifts = {
                    attr: self.tree.plan.lifts[attr] for attr in node.lifted
                }
                for shard in range(self.shards):
                    children = []
                    for child in node.children:
                        relation = Relation(child.key, ring)
                        relation.data = per_shard[shard][child.name]
                        children.append(relation)
                    children.sort(key=len)
                    joined = children[0]
                    for child in children[1:]:
                        joined = joined.join(child)
                    per_shard[shard][name] = joined.marginalize(
                        node.key, lifts
                    ).data
        return per_shard

    # ------------------------------------------------------------------

    def _refresh_view_sizes(self) -> None:
        try:
            self.aggregate_stats()
        except EngineError:  # pragma: no cover - defensive
            pass

    def describe(self) -> str:
        """One-line summary for benchmark tables and logs."""
        cores = os.cpu_count() or 1
        backend = self.backend_name
        if backend == "process":
            backend = f"process/{self.transport_name}"
        return (
            f"{self.strategy} x{self.shards} ({backend}, "
            f"hash on {'/'.join(self.shard_plan.attrs)}, "
            f"routed={len(self.shard_plan.routed)}, "
            f"broadcast={len(self.shard_plan.broadcast)}, {cores} cores)"
        )
