"""Sharded multi-core ingestion: one F-IVM engine per worker process.

The paper's C++ system sustains high update rates with compiled triggers;
a pure-Python reproduction is bounded by the interpreter on one core.
:class:`ShardedEngine` recovers throughput by horizontal partitioning:
the coordinator hash-routes every delta on the shard attributes a
:class:`~repro.viewtree.builder.ShardPlan` derives from the view tree,
each shard runs a full :class:`~repro.engine.fivm.FIVMEngine` over its
slice of the database, and the query result is the ring-sum of the
per-shard root views (multilinearity of the join makes that exact — see
:mod:`repro.data.sharding`).

Two backends extend one :class:`ShardBackend` protocol:

- ``"serial"`` keeps the shard engines in-process. No parallelism, but
  identical routing/merging semantics — this is what the determinism
  tests sweep and the fallback on platforms without ``fork``.
- ``"process"`` forks one worker per shard over a duplex pipe each, with
  the *data plane* delegated to a :class:`~repro.engine.transport`
  implementation selected by :class:`~repro.config.EngineConfig`:

  * ``transport="shm"`` (the default where available) moves payload
    bytes through per-shard shared-memory rings — the pipes carry only
    control messages (op, buffer generation, block layout) — and runs
    ``result()``/``export_state()`` gathers *tree-wise*: workers merge
    pairwise across shards and the coordinator reads one final blob,
    so gather cost grows logarithmically rather than linearly in the
    shard count.
  * ``transport="pipe"`` is the historical wire: deltas pickled through
    the pipe in columnar form (``columnar_transport=False`` restores
    the dict form for ablation), gathers fanned in and merged on the
    coordinator.

  Applies are fire-and-forget either way, so the coordinator routes
  batch *n+1* while workers maintain batch *n*; ``result()`` /
  ``shard_stats()`` / ``memory_report()`` / ``export_state()`` are
  synchronous fan-out/fan-in points. Fork start is required because
  payload plans hold lifting closures that cannot cross a spawn boundary
  — workers inherit the query object instead of unpickling it.

Every merge path — the serial backend, the pipe coordinator and the shm
worker tree — folds per-shard parts in the *same* pairwise structure
(:func:`pairwise_fold`), so all transports produce bit-identical results
for any ring, floating point included.

Checkpoints are shard-count portable: ``export_state`` merges per-shard
view snapshots into the global normal form a plain
:class:`~repro.engine.fivm.FIVMEngine` would export (ring-additivity of
the per-shard views makes the merge exact), and ``import_state``
re-partitions that normal form through the :class:`ShardRouter`, so a
snapshot written at N shards restores at any M — including M=1, a plain
F-IVM engine, and across the serial/process backend switch.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import EngineConfig, resolve_engine_config
from repro.data.columnar import ColumnarDelta
from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.sharding import ShardRouter, shard_hash
from repro.engine.base import EngineStatistics, MaintenanceEngine
from repro.engine.fivm import FIVMEngine
from repro.engine.supervisor import WorkerSupervisor
from repro.engine.transport import (
    PipeTransport,
    ShardTransport,
    SharedMemoryTransport,
    _ShmOverflow,
    resolve_transport,
)
from repro.errors import EngineError, SupervisionError
from repro.query.query import Query
from repro.testing import faults as _faults
from repro.query.variable_order import VariableOrder
from repro.viewtree.builder import ShardPlan, build_shard_plan, build_view_tree

__all__ = [
    "ShardedEngine",
    "ShardBackend",
    "available_backends",
    "resolve_backend",
    "pairwise_fold",
]

BACKENDS = ("serial", "process")


def available_backends() -> Tuple[str, ...]:
    """Backends usable on this platform (``process`` needs ``fork``)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return BACKENDS
    return ("serial",)


def resolve_backend(backend: str, shards: int) -> str:
    """Resolve ``"auto"`` and validate an explicit choice."""
    if backend == "auto":
        if shards > 1 and "process" in available_backends():
            return "process"
        return "serial"
    if backend not in BACKENDS:
        raise EngineError(
            f"unknown shard backend {backend!r}; expected one of "
            f"{('auto',) + BACKENDS}"
        )
    if backend == "process" and "process" not in available_backends():
        raise EngineError(
            "the process backend needs the fork start method "
            "(unavailable on this platform); use backend='serial'"
        )
    return backend


# ----------------------------------------------------------------------
# Pairwise merging — one fold structure for every transport
# ----------------------------------------------------------------------


def pairwise_fold(parts: List[Any], combine: Callable[[Any, Any], Any]) -> Any:
    """Fold ``parts`` pairwise: adjacent pairs combine, odd tails pass up.

    This is exactly the reduction order of the shm worker tree (shard
    ``s+step`` merges into shard ``s`` round by round), so folding
    per-shard results with it on the coordinator — as the serial and
    pipe paths do — yields bit-identical floats to the tree merge.
    ``combine`` may mutate and return its left argument; callers own the
    leaf copies.
    """
    if not parts:
        return None
    while len(parts) > 1:
        folded = []
        for i in range(0, len(parts) - 1, 2):
            folded.append(combine(parts[i], parts[i + 1]))
        if len(parts) % 2:
            folded.append(parts[-1])
        parts = folded
    return parts[0]


def _merge_root_pair(left: Dict, right: Dict, key, ring) -> Dict:
    """Ring-add two root-view dicts (mutates and returns ``left``)."""
    mine = Relation(key, ring)
    mine.data = left
    theirs = Relation(key, ring)
    theirs.data = right
    mine.add_inplace(theirs)
    return mine.data


def _merge_root_states(parts: List[Dict], key, ring) -> Dict:
    """Pairwise ring-sum of per-shard root-view dicts (leaf copies)."""
    return pairwise_fold(
        [dict(part) for part in parts],
        lambda a, b: _merge_root_pair(a, b, key, ring),
    ) or {}


def _merge_views_pair(left, right, keys, ring, broadcast_views) -> Dict:
    """Merge two per-shard ``{view name -> data}`` maps view by view.

    Views over broadcast relations only are identical replicas — the
    lower shard's copy is kept instead of summed (summing would
    double-count). Mutates and returns ``left``.
    """
    for name, data in left.items():
        if name in broadcast_views:
            continue
        left[name] = _merge_root_pair(data, right[name], keys[name], ring)
    return left


def _merge_view_states(parts, keys, ring, broadcast_views) -> Dict[str, Dict]:
    """Pairwise merge of per-shard view-snapshot maps (leaf copies)."""
    return pairwise_fold(
        [{name: dict(data) for name, data in part.items()} for part in parts],
        lambda a, b: _merge_views_pair(a, b, keys, ring, broadcast_views),
    ) or {}


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class ShardBackend:
    """What the coordinator needs from a set of shard engines.

    Both backends seed their shards either from per-shard ``databases``
    (initialize) or from per-shard ``states`` (checkpoint restore) —
    exactly one of the two — and a closed backend refuses every
    operation with the same descriptive :class:`EngineError` instead of
    dying on its emptied engine/connection lists. Subclasses implement
    ``apply``/``results``/``stats``/``memory``/``export_states``/
    ``close``.
    """

    name = "abstract"

    def __init__(self):
        self.closed = False
        #: Supervision state (set by the coordinator when
        #: ``EngineConfig.supervise`` is on). A supervised backend never
        #: tears itself down on a dead worker: it marks the shard failed
        #: and lets :meth:`ShardedEngine._recover` rebuild it in place.
        self.supervised = False
        self.heartbeat_timeout: Optional[float] = None
        self.failed_shards: set = set()
        self.failures: Dict[int, str] = {}
        self.incarnations: List[int] = []

    @staticmethod
    def _check_seeds(databases, states) -> List:
        if (databases is None) == (states is None):
            raise EngineError(
                "shard backend needs either databases or states, not both"
            )
        return databases if states is None else states

    def _require_open(self) -> None:
        if self.closed:
            raise EngineError(
                "shard backend is closed; initialize() (or import_state()) "
                "the engine again before using it"
            )

    def mark_failed(self, shard: int, message: str) -> None:
        """Park ``shard`` for recovery (supervised mode only)."""
        if self.supervised:
            self.failed_shards.add(shard)
            self.failures[shard] = message

    def clear_failed(self, shard: int) -> None:
        self.failed_shards.discard(shard)
        self.failures.pop(shard, None)

    def kill_callable(self, shard: int) -> Optional[Callable[[], None]]:
        """A callback that kills ``shard``'s worker, for coordinator-side
        fault injection sites; ``None`` when shards are in-process."""
        return None

    def respawn(self, shard: int, state: dict) -> None:
        raise EngineError(
            f"{self.name} backend cannot respawn shard {shard}"
        )  # pragma: no cover - overridden by both backends

    def _raise_gather_errors(self, errors: List[str], dead: bool) -> None:
        """Surface per-shard failures as one joined :class:`EngineError`.

        When a worker died (``dead``) the request/reply alignment cannot
        be recovered, so an *unsupervised* backend tears itself down
        first; a supervised one stays open — the dead shards were marked
        failed and the coordinator respawns them (with a fresh pipe, so
        alignment is moot) before retrying the gather.
        """
        if errors:
            if dead and not self.supervised:
                self.close()
            raise EngineError("; ".join(errors))


class _SerialBackend(ShardBackend):
    """All shard engines live in the coordinator process.

    Under supervision an engine that raises plays the role of a crashed
    worker: the shard is marked failed (the broken engine object is
    dropped) and :meth:`respawn` rebuilds it from a state slice — the
    exact recovery path the process backend exercises, minus the fork.
    The fault-injection hooks fire at the same logical sites as the
    worker-process ones, so the deterministic fault suite runs the whole
    matrix on the serial backend too.
    """

    name = "serial"

    def __init__(
        self,
        factory: Callable[[], MaintenanceEngine],
        databases: Optional[List[Database]] = None,
        states: Optional[List[dict]] = None,
        supervised: bool = False,
        heartbeat_timeout: Optional[float] = None,
    ):
        super().__init__()
        self.supervised = supervised
        self.heartbeat_timeout = heartbeat_timeout
        self._factory = factory
        seeds = self._check_seeds(databases, states)
        self.engines = [factory() for _ in seeds]
        self.incarnations = [0] * len(seeds)
        if states is None:
            for engine, database in zip(self.engines, databases):
                engine.initialize(database)
        else:
            for engine, state in zip(self.engines, states):
                engine.import_state(state)

    def _guard(self, shard: int, op: str, fn: Callable[[], Any]) -> Any:
        """Run one shard-engine op; under supervision any failure marks
        the shard dead — the serial analogue of a crashed worker."""
        if not self.supervised:
            return fn()
        if shard in self.failed_shards:
            raise EngineError(
                f"shard {shard} engine is down: "
                f"{self.failures.get(shard, 'failed')}"
            )
        try:
            return fn()
        except Exception as exc:
            message = f"shard {shard} engine failed on {op!r}: {exc!r}"
            self.mark_failed(shard, message)
            raise EngineError(message) from None

    def apply(self, shard: int, relation_name: str, delta: Relation) -> None:
        self._require_open()

        def run():
            if _faults.current_injector() is not None:
                _faults.fire(
                    "worker.apply", op="apply", shard=shard,
                    incarnation=self.incarnations[shard],
                )
            self.engines[shard].apply(relation_name, delta)

        self._guard(shard, "apply", run)

    def advance(self, ticks: int) -> None:
        self._require_open()
        if not self.supervised:
            for engine in self.engines:
                engine.advance_decay(ticks)
            return
        errors = []
        for shard in range(len(self.engines)):
            try:
                self.advance_one(shard, ticks)
            except EngineError as exc:
                errors.append(str(exc))
        if errors:
            raise EngineError("; ".join(errors))

    def advance_one(self, shard: int, ticks: int) -> None:
        self._require_open()

        def run():
            if _faults.current_injector() is not None:
                _faults.fire(
                    "worker.advance", op="advance", shard=shard,
                    incarnation=self.incarnations[shard],
                )
            self.engines[shard].advance_decay(ticks)

        self._guard(shard, "advance", run)

    def _collect(self, op: str, fn: Callable[[Any], Any]) -> List[Any]:
        """Per-shard gather; supervised failures are collected so every
        healthy shard is still polled (mirrors the process fan-in)."""
        self._require_open()
        if not self.supervised:
            return [fn(engine) for engine in self.engines]
        out: List[Any] = [None] * len(self.engines)
        errors = []
        for shard, engine in enumerate(self.engines):
            def run(engine=engine, shard=shard):
                if _faults.current_injector() is not None:
                    _faults.fire(
                        "coordinator.gather", op=op, shard=shard,
                        incarnation=self.incarnations[shard],
                    )
                return fn(engine)

            try:
                out[shard] = self._guard(shard, op, run)
            except EngineError as exc:
                errors.append(str(exc))
        if errors:
            raise EngineError("; ".join(errors))
        return out

    def results(self) -> List[Dict]:
        return self._collect("result", lambda engine: engine.result().data)

    def stats(self) -> List[Dict[str, int]]:
        return self._collect("stats", lambda engine: engine.stats.snapshot())

    def memory(self) -> List[Dict[str, Dict[str, int]]]:
        return self._collect("memory", lambda engine: engine.memory_report())

    def export_states(self) -> List[dict]:
        return self._collect("export", lambda engine: engine.export_state())

    def respawn(self, shard: int, state: dict) -> None:
        """Rebuild ``shard``'s engine from a re-partitioned state slice."""
        self._require_open()
        engine = self._factory()
        engine.import_state(state)
        self.engines[shard] = engine
        self.incarnations[shard] += 1
        # The fresh engine is healthy until proven otherwise; replay
        # failures re-mark it.
        self.clear_failed(shard)

    def gather_one(self, shard: int, op: str) -> Any:
        self._require_open()
        ops = {
            "stats": lambda engine: engine.stats.snapshot(),
            "result": lambda engine: engine.result().data,
            "ping": lambda engine: "pong",
        }
        return self._guard(
            shard, op, lambda: ops[op](self.engines[shard])
        )

    def close(self) -> None:
        self.engines = []
        self.closed = True


def _serve_tree(conn, endpoint, engine, op, seq, failure, broadcast_views):
    """One worker's side of a tree gather; returns the new parked failure.

    A parked failure (or a merge-partner failure) poisons this worker's
    write round — so partners waiting on it abort fast instead of timing
    out — and replies ``("error", ...)``. A blob that does not fit the
    up block replies ``("overflow", needed bytes)`` without parking: the
    coordinator grows the blocks and retries the whole gather.
    """
    if failure is None and endpoint is None:  # pragma: no cover - defensive
        failure = f"shard worker got tree op {op!r} without an shm endpoint"
    if failure is not None:
        try:
            endpoint.poison(seq)
        except Exception:
            pass
        conn.send(("error", failure))
        return failure
    try:
        ring = engine.tree.plan.ring
        if op == "tresult":
            key = engine.tree.root.key
            payload = dict(engine.result().data)

            def combine(mine, theirs):
                return _merge_root_pair(mine, theirs, key, ring)

        else:  # "texport"
            keys = {
                name: node.key for name, node in engine.tree.views.items()
            }
            payload = {
                name: dict(data)
                for name, data in engine._export_payload()["views"].items()
            }

            def combine(mine, theirs):
                return _merge_views_pair(
                    mine, theirs, keys, ring, broadcast_views
                )

        endpoint.tree_merge(seq, payload, combine)
        conn.send(("ok", "done"))
        return None
    except _ShmOverflow as exc:
        try:
            endpoint.poison(seq, needed=exc.needed)
        except Exception:
            pass
        conn.send(("overflow", exc.needed))
        return failure
    except Exception as exc:
        message = f"shard worker failed on {op!r}: {exc!r}"
        try:
            endpoint.poison(seq)
        except Exception:
            pass
        conn.send(("error", message))
        return message


def _shard_worker(
    conn, factory, database, state=None, endpoint=None, broadcast_views=(),
    inherited=(), shard=-1, incarnation=0,
) -> None:
    """Worker loop: build the engine, then serve the coordinator's pipe.

    The engine is seeded from ``state`` (checkpoint restore) when given,
    otherwise from ``database``. Every synchronous reply is
    ``("ok", payload)``, ``("error", message)`` or — for tree gathers —
    ``("overflow", bytes)``; applies are fire-and-forget, so an apply
    failure is parked and surfaced at the next synchronous exchange. A
    parked worker still services the transport control plane: shared-
    memory deltas are acknowledged (``mark_consumed``) so the
    coordinator's ring flow control never deadlocks on a failed shard,
    and ``remap``/``remap_up`` segment swaps are honoured.

    ``inherited`` holds the coordinator-side pipe ends this fork copied;
    they are closed immediately so that a dying coordinator delivers EOF
    to every worker (a worker holding a duplicate of its own upstream
    end would otherwise block on ``recv`` forever).
    """
    for other in inherited:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed
            pass
    try:
        engine = factory()
        if state is not None:
            engine.import_state(state)
        else:
            engine.initialize(database)
        schemas = {
            name: engine.query.schema_of(name).attributes
            for name in engine.query.relation_names
        }
    except Exception as exc:
        conn.send(("error", f"shard initialization failed: {exc!r}"))
        conn.close()
        return
    conn.send(("ok", "ready"))
    failure: Optional[str] = None
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        op = message[0]
        if op == "stop":
            break
        if op == "remap":
            # Fire-and-forget segment swap — no reply, and honoured even
            # when a failure is parked (the coordinator already switched).
            try:
                endpoint.remap_down(message[1], message[2])
            except Exception as exc:  # pragma: no cover - defensive
                failure = failure or f"shard worker failed on 'remap': {exc!r}"
            continue
        if op == "remap_up":
            try:
                endpoint.remap_up(message[1], message[2])
            except Exception as exc:  # pragma: no cover - defensive
                failure = (
                    failure or f"shard worker failed on 'remap_up': {exc!r}"
                )
            continue
        if op == "tresult" or op == "texport":
            failure = _serve_tree(
                conn, endpoint, engine, op, message[1], failure,
                broadcast_views,
            )
            continue
        is_apply = (
            op == "apply" or op == "applyc" or op == "applyd"
            or op == "advance"
        )
        try:
            if _faults.current_injector() is not None and failure is None:
                # Deterministic fault sites (no-ops without an injector):
                # a "kill" spec dies the way a crashed process dies, a
                # "raise" spec becomes a parked failure below.
                if op == "apply" or op == "applyc" or op == "applyd":
                    _faults.fire(
                        "worker.apply", op=op, shard=shard,
                        incarnation=incarnation, kill=_faults.exit_worker,
                    )
                elif op == "advance":
                    _faults.fire(
                        "worker.advance", op=op, shard=shard,
                        incarnation=incarnation, kill=_faults.exit_worker,
                    )
                else:
                    _faults.fire(
                        "worker.reply", op=op, shard=shard,
                        incarnation=incarnation, kill=_faults.exit_worker,
                    )
            if failure is not None:
                if op == "applyd":
                    # Keep the ring flow control moving even while parked.
                    try:
                        endpoint.mark_consumed(message[2])
                    except Exception:
                        pass
                elif not is_apply:
                    conn.send(("error", failure))
            elif op == "apply":
                relation_name, data = message[1], message[2]
                delta = Relation(schemas[relation_name], name=relation_name)
                delta.data = data
                engine.apply(relation_name, delta)
            elif op == "applyc":
                # Columnar wire form: rebuild the dict delta once here;
                # the columnar form stays attached, so the worker's own
                # columnar maintenance path reuses it without re-deriving.
                relation_name, columns, counts = message[1], message[2], message[3]
                delta = ColumnarDelta(
                    schemas[relation_name], counts, columns=columns,
                    name=relation_name,
                ).to_relation()
                engine.apply(relation_name, delta)
            elif op == "applyd":
                # Shared-memory wire form: the pipe carried only the
                # generation, block layout and a checksum; the bytes are
                # in the ring. A checksum mismatch (torn write) parks the
                # worker with a descriptive failure instead of decoding
                # garbage into the views.
                relation_name, generation, layout = (
                    message[1], message[2], message[3]
                )
                nbytes = message[4] if len(message) > 4 else None
                crc = message[5] if len(message) > 5 else None
                delta = endpoint.read_delta(
                    schemas[relation_name], relation_name, generation,
                    layout, nbytes, crc,
                )
                engine.apply(relation_name, delta)
            elif op == "advance":
                # Fire-and-forget like applies: the pipe is FIFO, so the
                # tick lands after every delta routed before it — all
                # shards advance their decay clocks in lockstep.
                engine.advance_decay(message[1])
            elif op == "result":
                conn.send(("ok", engine.result().data))
            elif op == "ping":
                # Liveness probe (supervised gathers); also the recovery
                # barrier that flushes a respawned shard's replay queue.
                conn.send(("ok", "pong"))
            elif op == "stats":
                conn.send(("ok", engine.stats.snapshot()))
            elif op == "memory":
                conn.send(("ok", engine.memory_report()))
            elif op == "export":
                conn.send(("ok", engine.export_state()))
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except Exception as exc:
            failure = f"shard worker failed on {op!r}: {exc!r}"
            if not is_apply:
                conn.send(("error", failure))
    if endpoint is not None:
        endpoint.close()
    conn.close()


class _ProcessBackend(ShardBackend):
    """One forked worker process per shard, one duplex pipe each.

    The pipe is the *control plane*; the injected
    :class:`~repro.engine.transport.ShardTransport` is the data plane
    (see the module docstring). The pipe protocol is strictly one reply
    per synchronous request, so gathers must *always* drain every
    fanned-out reply — even when a shard reports an error — or the next
    gather would read the stale replies of the previous op and silently
    return results for the wrong request.
    """

    name = "process"

    #: How many grow-and-retry rounds a tree gather may take before the
    #: backend gives up (each round at least doubles the up blocks).
    MAX_GATHER_ATTEMPTS = 4

    def __init__(
        self,
        factory: Callable[[], MaintenanceEngine],
        databases: Optional[List[Database]] = None,
        states: Optional[List[dict]] = None,
        transport: Optional[ShardTransport] = None,
        broadcast_views: Tuple[str, ...] = (),
        supervised: bool = False,
        heartbeat_timeout: Optional[float] = None,
    ):
        super().__init__()
        self.supervised = supervised
        self.heartbeat_timeout = heartbeat_timeout
        self._factory = factory
        self._broadcast_views = broadcast_views
        self._context = multiprocessing.get_context("fork")
        context = self._context
        self.transport = transport if transport is not None else PipeTransport()
        self.connections = []
        self.processes = []
        seeds = self._check_seeds(databases, states)
        self.incarnations = [0] * len(seeds)
        try:
            self.transport.setup(len(seeds))
            for shard, seed in enumerate(seeds):
                parent_conn, child_conn = context.Pipe(duplex=True)
                database, state = (
                    (seed, None) if states is None else (None, seed)
                )
                process = context.Process(
                    target=_shard_worker,
                    args=(
                        child_conn, factory, database, state,
                        self.transport.worker_endpoint(shard),
                        broadcast_views,
                        (*self.connections, parent_conn),
                        shard, 0,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.connections.append(parent_conn)
                self.processes.append(process)
            for shard, conn in enumerate(self.connections):
                status, payload = self._receive(shard, conn)
                if status != "ok":
                    raise EngineError(f"shard {shard}: {payload}")
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------

    def apply(self, shard: int, relation_name: str, delta: Relation) -> None:
        self._require_open()
        try:
            self.connections[shard].send(("apply", relation_name, delta.data))
        except (BrokenPipeError, OSError) as exc:
            raise EngineError(f"shard {shard} worker is gone: {exc!r}") from None

    def apply_delta(self, shard: int, relation_name: str, delta) -> None:
        """Fire-and-forget apply through the transport's data plane.

        ``delta`` is whatever the transport asked for
        (``wants_columnar``): a :class:`ColumnarDelta` for the columnar
        pipe wire and the shm rings, a :class:`Relation` otherwise.
        """
        self._require_open()
        alive = self.processes[shard].is_alive
        if self.supervised and self.heartbeat_timeout:
            # A *hung* (not dead) worker never consumes its ring slot;
            # bound the transport's wait so the supervisor can declare
            # the shard unresponsive and respawn it.
            deadline = time.monotonic() + self.heartbeat_timeout

            def alive_fn():
                return alive() and time.monotonic() < deadline
        else:
            alive_fn = alive
        try:
            self.transport.send_delta(
                self.connections[shard], shard, relation_name, delta,
                alive=alive_fn,
            )
        except (BrokenPipeError, OSError) as exc:
            raise EngineError(f"shard {shard} worker is gone: {exc!r}") from None

    def advance(self, ticks: int) -> None:
        """Fire-and-forget decay-clock broadcast to every shard.

        Rides the control pipe, which is FIFO per worker even under the
        shm transport (data-plane applies announce themselves on the same
        pipe), so every shard observes the tick at the same stream
        position.
        """
        self._require_open()
        for shard, conn in enumerate(self.connections):
            try:
                conn.send(("advance", ticks))
            except (BrokenPipeError, OSError) as exc:
                raise EngineError(
                    f"shard {shard} worker is gone: {exc!r}"
                ) from None

    def results(self) -> List[Dict]:
        # Supervised gathers fan in over the pipes even when the
        # transport offers tree merges: a worker dying mid tree-merge
        # would poison its partners, and the fan-in fold is the same
        # pairwise_fold the tree runs, so the bits match either way.
        if self.transport.tree_gather and not self.supervised:
            return [self._gather_tree("tresult")]
        return self._gather("result")

    def stats(self) -> List[Dict[str, int]]:
        return self._gather("stats")

    def memory(self) -> List[Dict[str, Dict[str, int]]]:
        return self._gather("memory")

    def export_states(self) -> List[dict]:
        if self.transport.tree_gather and not self.supervised:
            return [{"views": self._gather_tree("texport")}]
        return self._gather("export")

    def kill_callable(self, shard: int) -> Optional[Callable[[], None]]:
        process = self.processes[shard]
        if process.pid is None:  # pragma: no cover - defensive
            return None
        return _faults.kill_process(process.pid)

    def respawn(self, shard: int, state: dict) -> None:
        """Replace ``shard``'s worker with a fresh fork seeded from
        ``state`` (a re-partitioned baseline slice).

        The old process is SIGKILLed if still technically alive (it may
        be hung rather than dead), its pipe is closed, and the
        transport's per-shard segments are rebuilt so the new worker
        starts from generation zero — no ring state survives the old
        incarnation.
        """
        self._require_open()
        old_process = self.processes[shard]
        old_conn = self.connections[shard]
        if old_process.is_alive():
            old_process.kill()
        old_process.join(timeout=5.0)
        try:
            old_conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self.transport.reset_shard(shard)
        incarnation = self.incarnations[shard] + 1
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        inherited = tuple(
            conn for index, conn in enumerate(self.connections)
            if index != shard
        ) + (parent_conn,)
        process = self._context.Process(
            target=_shard_worker,
            args=(
                child_conn, self._factory, None, state,
                self.transport.worker_endpoint(shard),
                self._broadcast_views, inherited, shard, incarnation,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.connections[shard] = parent_conn
        self.processes[shard] = process
        self.incarnations[shard] = incarnation
        status, payload = self._receive(shard, parent_conn)
        if status != "ok":
            raise EngineError(f"shard {shard}: {payload}")
        # The fresh worker is healthy until proven otherwise; replay
        # failures re-mark it.
        self.clear_failed(shard)

    def advance_one(self, shard: int, ticks: int) -> None:
        self._require_open()
        try:
            self.connections[shard].send(("advance", ticks))
        except (BrokenPipeError, OSError) as exc:
            raise EngineError(
                f"shard {shard} worker is gone: {exc!r}"
            ) from None

    def gather_one(self, shard: int, op: str) -> Any:
        """One synchronous request/reply exchange with a single shard."""
        self._require_open()
        try:
            self.connections[shard].send((op,))
        except (BrokenPipeError, OSError) as exc:
            raise EngineError(
                f"shard {shard} worker is gone: {exc!r}"
            ) from None
        status, payload = self._receive(shard, self.connections[shard])
        if status != "ok":
            raise EngineError(f"shard {shard}: {payload}")
        return payload

    def close(self) -> None:
        for conn in self.connections:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)
        for conn in self.connections:
            conn.close()
        self.connections = []
        self.processes = []
        # Workers are down (or being torn down): unlink every segment.
        self.transport.close()
        self.closed = True

    # ------------------------------------------------------------------

    def _gather(self, op: str) -> List[Any]:
        """Fan ``op`` out to every shard, then fan every reply back in.

        Error replies (a parked apply failure, an op that raised) do not
        stop the fan-in: the remaining replies are drained first so the
        pipes stay request/reply aligned, then one :class:`EngineError`
        summarizing every failed shard is raised. The backend stays usable
        after a drained error; if a worker died mid-gather (EOF/broken
        pipe) the pipes cannot be realigned, so the backend tears itself
        down and subsequent ops raise the closed error.
        """
        self._require_open()
        sent: List[Tuple[int, Any]] = []
        errors: List[str] = []
        dead = False
        for shard, conn in enumerate(self.connections):
            if self.supervised and shard in self.failed_shards:
                errors.append(
                    f"shard {shard}: {self.failures.get(shard, 'failed')}"
                )
                continue
            if self.supervised and _faults.current_injector() is not None:
                try:
                    _faults.fire(
                        "coordinator.gather", op=op, shard=shard,
                        incarnation=self.incarnations[shard],
                        kill=self.kill_callable(shard),
                    )
                except _faults.InjectedFault as exc:
                    message = f"shard {shard}: {exc}"
                    errors.append(message)
                    self.mark_failed(shard, message)
                    continue
            try:
                conn.send((op,))
                sent.append((shard, conn))
            except (BrokenPipeError, OSError) as exc:
                message = f"shard {shard} worker is gone: {exc!r}"
                errors.append(message)
                self.mark_failed(shard, message)
                dead = True
        results: List[Any] = [None] * len(self.connections)
        for shard, conn in sent:
            try:
                status, payload = self._receive(shard, conn)
            except EngineError as exc:
                errors.append(str(exc))
                self.mark_failed(shard, str(exc))
                dead = True
                continue
            if status != "ok":
                message = f"shard {shard}: {payload}"
                errors.append(message)
                self.mark_failed(shard, message)
            else:
                results[shard] = payload
        self._raise_gather_errors(errors, dead)
        return results

    def _gather_tree(self, op: str) -> Dict:
        """Run one tree-wise gather; returns the final merged payload.

        The workers merge pairwise among themselves through the up
        blocks; the coordinator only fans out ``(op, seq)``, drains one
        acknowledgement per shard (keeping the pipes aligned exactly as
        :meth:`_gather` does) and reads shard 0's final blob. Overflow
        acknowledgements grow the up blocks and retry the whole gather
        under a fresh sequence number.
        """
        self._require_open()
        for _attempt in range(self.MAX_GATHER_ATTEMPTS):
            # A dead partner would stall the worker-side merge dance, so
            # check liveness before fanning out rather than after.
            for shard, process in enumerate(self.processes):
                if not process.is_alive():
                    self.close()
                    raise EngineError(
                        f"shard {shard} worker died (process exited); "
                        "shard backend closed"
                    )
            seq = self.transport.new_sequence()
            sent: List[Tuple[int, Any]] = []
            errors: List[str] = []
            dead = False
            overflow = 0
            for shard, conn in enumerate(self.connections):
                try:
                    conn.send((op, seq))
                    sent.append((shard, conn))
                except (BrokenPipeError, OSError) as exc:
                    errors.append(f"shard {shard} worker is gone: {exc!r}")
                    dead = True
            for shard, conn in sent:
                try:
                    status, payload = self._receive(shard, conn)
                except EngineError as exc:
                    errors.append(str(exc))
                    dead = True
                    continue
                if status == "overflow":
                    overflow = max(overflow, int(payload))
                elif status != "ok":
                    errors.append(f"shard {shard}: {payload}")
            self._raise_gather_errors(errors, dead)
            if overflow:
                names, up_bytes = self.transport.grow_up(overflow)
                for shard, conn in enumerate(self.connections):
                    try:
                        conn.send(("remap_up", names, up_bytes))
                    except (BrokenPipeError, OSError) as exc:
                        self._raise_gather_errors(
                            [f"shard {shard} worker is gone: {exc!r}"],
                            dead=True,
                        )
                continue
            return self.transport.read_final(seq)
        raise EngineError(  # pragma: no cover - would need pathological growth
            f"tree gather {op!r} still overflowed after "
            f"{self.MAX_GATHER_ATTEMPTS} block-growth attempts"
        )

    def _receive(self, shard: int, conn) -> Tuple[str, Any]:
        """One raw ``(status, payload)`` reply; EOF means the worker died.

        Supervised mode polls instead of blocking: a worker that died
        without closing its pipe end — or one that is alive but hung past
        ``heartbeat_timeout`` — is detected and reported instead of
        blocking the coordinator forever.
        """
        if not self.supervised:
            try:
                return conn.recv()
            except EOFError:
                raise EngineError(
                    f"shard {shard} worker died without replying"
                ) from None
        timeout = self.heartbeat_timeout or 30.0
        deadline = time.monotonic() + timeout
        while True:
            # A SIGKILLed worker surfaces as EOFError or a reset/broken
            # pipe (OSError) depending on how much it had buffered.
            try:
                if conn.poll(0.02):
                    return conn.recv()
            except (EOFError, OSError):
                raise EngineError(
                    f"shard {shard} worker died without replying"
                ) from None
            if not self.processes[shard].is_alive():
                # Drain any reply that raced the process exit.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise EngineError(
                    f"shard {shard} worker died without replying"
                ) from None
            if time.monotonic() > deadline:
                raise EngineError(
                    f"shard {shard} worker unresponsive: no reply within "
                    f"the heartbeat timeout ({timeout:g}s)"
                )


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


class ShardedEngine(MaintenanceEngine):
    """Coordinator over ``shards`` F-IVM engines, each owning a slice.

    Parameters
    ----------
    query, order:
        As for :class:`~repro.engine.fivm.FIVMEngine`; every shard builds
        the same tree over its partition.
    config:
        An :class:`~repro.config.EngineConfig` carrying every tunable —
        shard count, backend, transport, shard attributes and the
        per-shard F-IVM options. The legacy keyword arguments
        (``shards=``, ``backend=``, ``use_columnar=``, …) still work
        through a deprecation shim; when neither is given the engine
        defaults to two shards.

    The coordinator's own ``stats`` count what was routed (batches,
    updates, tuples); per-shard maintenance counters are aggregated on
    demand by :meth:`shard_stats` / :meth:`aggregate_stats`. Use as a
    context manager (or call :meth:`close`) to stop worker processes.
    """

    strategy = "fivm-sharded"

    #: Legacy constructor kwargs accepted by the deprecation shim.
    LEGACY_OPTIONS = (
        "shards", "shard_attrs", "backend", "transport",
        "use_view_index", "adaptive_probe", "use_columnar", "use_fused",
        "columnar_transport",
    )

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        config: Optional[EngineConfig] = None,
        **legacy,
    ):
        super().__init__(query)
        config = resolve_engine_config(
            config, legacy, "ShardedEngine", self.LEGACY_OPTIONS,
            defaults={"shards": 2},
        )
        self.config = config
        self.shards = config.shards
        self.order = order
        self.use_view_index = config.use_view_index
        self.adaptive_probe = config.adaptive_probe
        self.use_columnar = config.use_columnar
        self.use_fused = config.use_fused
        self.columnar_transport = config.columnar_transport
        self.tree = build_view_tree(query, order=order)
        self.shard_plan: ShardPlan = build_shard_plan(
            self.tree, attrs=config.shard_attrs
        )
        schemas = {
            name: query.schema_of(name).attributes
            for name in query.relation_names
        }
        self.router = ShardRouter(schemas, self.shard_plan.attrs, self.shards)
        if set(self.router.routed) != set(self.shard_plan.routed):
            # Both derive "contains all shard attrs" independently; if the
            # criteria ever diverge, fail loudly rather than route deltas
            # differently from what the plan (and describe()) reports.
            raise EngineError(
                f"shard plan routed {self.shard_plan.routed!r} but the "
                f"router derived {self.router.routed!r}"
            )
        self.backend_name = resolve_backend(config.backend, self.shards)
        self.transport_name = resolve_transport(
            config.transport, self.backend_name
        )
        #: Views whose subtree touches broadcast relations only — exact
        #: replicas on every shard, copied (not summed) by every merge.
        view_relations = self._view_relations()
        broadcast = set(self.router.broadcast)
        self._broadcast_only_views = tuple(sorted(
            name for name in self.tree.views
            if view_relations[name] <= broadcast
        ))
        self._backend = None
        self._was_closed = False
        #: Self-healing state (None when ``config.supervise`` is off):
        #: baseline snapshot + replay log + recovery budget. See
        #: :mod:`repro.engine.supervisor`.
        self.supervisor: Optional[WorkerSupervisor] = (
            WorkerSupervisor(config.replay_log_limit, config.heartbeat_timeout)
            if config.supervise else None
        )

    # ------------------------------------------------------------------

    def _engine_factory(self) -> Callable[[], FIVMEngine]:
        # Capture plain locals (not self): the closure crosses the fork
        # boundary into every worker process.
        query, order = self.query, self.order
        shard_config = EngineConfig(
            use_view_index=self.use_view_index,
            adaptive_probe=self.adaptive_probe,
            use_columnar=self.use_columnar,
            use_fused=self.use_fused,
            # Every shard runs the same decay clock; the coordinator
            # broadcasts ticks so they stay in lockstep.
            decay=self.config.decay,
        )

        def factory() -> FIVMEngine:
            return FIVMEngine(query, order=order, config=shard_config)

        return factory

    def _make_transport(self) -> ShardTransport:
        if self.transport_name == "shm":
            return SharedMemoryTransport()
        return PipeTransport(columnar=self.columnar_transport)

    def _make_backend(self, **seeds) -> None:
        factory = self._engine_factory()
        supervised = self.supervisor is not None
        heartbeat = self.config.heartbeat_timeout if supervised else None
        if self.backend_name == "process":
            self._backend = _ProcessBackend(
                factory,
                transport=self._make_transport(),
                broadcast_views=self._broadcast_only_views,
                supervised=supervised,
                heartbeat_timeout=heartbeat,
                **seeds,
            )
        else:
            self._backend = _SerialBackend(
                factory, supervised=supervised,
                heartbeat_timeout=heartbeat, **seeds,
            )
        self._was_closed = False

    def initialize(self, database: Database) -> None:
        self.close()
        self._make_backend(databases=self.router.partition_database(database))
        self.stats = EngineStatistics()
        self._initialized = True
        self._refresh_view_sizes()
        if self.supervisor is not None:
            # Capture the recovery baseline: the same global normal form
            # checkpoints export (the export_state override feeds it to
            # the supervisor, and every later export refreshes it).
            self.export_state()

    def apply(self, relation_name: str, delta: Relation) -> None:
        self._require_initialized()
        self._check_delta(relation_name, delta)
        if not delta.data:
            return
        if self.supervisor is not None:
            self._apply_supervised(relation_name, delta)
            return
        self.stats.record_batch(delta)
        if (
            self.backend_name == "process"
            and self._backend.transport.wants_columnar
        ):
            # Route and ship in columnar form: rows hash exactly as in
            # split(), but no per-shard key-tuple dict is built and the
            # data plane carries columns (pickled pipe lists or raw
            # shared-memory blocks) instead of pickled dicts.
            for shard, sub in self.router.split_columnar(
                relation_name, delta.columnar()
            ):
                self._backend.apply_delta(shard, relation_name, sub)
            return
        for shard, sub_delta in self.router.split(relation_name, delta):
            self._backend.apply(shard, relation_name, sub_delta)

    def _apply_supervised(self, relation_name: str, delta: Relation) -> None:
        """Routed apply with failure containment.

        The batch is recorded into the replay log *pre-split* (one
        shallow dict copy), then routed exactly as the unsupervised path
        routes it. A shard that fails mid-batch is marked and skipped for
        the rest of the batch — it will be rebuilt from baseline + log,
        which re-delivers this very batch through the same deterministic
        router split, so the recovered shard sees exactly the sub-deltas
        it missed and the root view stays bit-identical.
        """
        supervisor = self.supervisor
        if supervisor.needs_rebase():
            # The log outgrew its bound: refresh the baseline (one export
            # gather, which truncates the log as a side effect).
            self.export_state()
        supervisor.record_delta(relation_name, delta.data)
        self.stats.record_batch(delta)
        backend = self._backend
        columnar = (
            self.backend_name == "process"
            and backend.transport.wants_columnar
        )
        if columnar:
            routed = self.router.split_columnar(
                relation_name, delta.columnar()
            )
        else:
            routed = self.router.split(relation_name, delta)
        injector_on = _faults.current_injector() is not None
        for shard, sub in routed:
            if shard in backend.failed_shards:
                continue
            try:
                if injector_on:
                    _faults.fire(
                        "coordinator.send", op="apply", shard=shard,
                        incarnation=backend.incarnations[shard],
                        kill=backend.kill_callable(shard),
                    )
                if columnar:
                    backend.apply_delta(shard, relation_name, sub)
                else:
                    backend.apply(shard, relation_name, sub)
            except (EngineError, _faults.InjectedFault) as exc:
                backend.mark_failed(shard, str(exc))
        if backend.failed_shards:
            self._recover()

    def result(self) -> Relation:
        """Ring-additive merge of the per-shard root views.

        Shard keys never collide for views keyed below the shard
        attributes, and where they do collide (e.g. the empty root key of
        a full aggregate) the ring's addition combines them — the same
        operation maintenance itself uses, so the merged result is
        exactly the unsharded engine's. Under the shm transport the merge
        already happened tree-wise across the workers and the backend
        returns a single part; either way the fold structure is
        :func:`pairwise_fold`, so the bits match across transports.
        """
        self._require_initialized()
        root = self.tree.root
        ring = self.tree.plan.ring
        merged = Relation(root.key, ring, name=root.name)
        merged.data = _merge_root_states(
            self._gather_with_recovery(lambda: self._backend.results()),
            root.key, ring,
        )
        return merged

    # ------------------------------------------------------------------
    # Serving: merge-on-publish
    # ------------------------------------------------------------------

    def publish(
        self,
        event_offset: Optional[int] = None,
        window: Optional[Tuple[int, int]] = None,
    ):
        """Publish the ring-additive merge of the per-shard root views.

        Merge-on-publish: the gather in :meth:`result` is the
        synchronization barrier that waits for all in-flight
        fire-and-forget applies, so the published snapshot covers every
        delta routed before this call — the same consistency the
        unsharded engine gets for free.

        Failure paths carry the PR-4 hardening into serving: a closed
        engine raises the descriptive closed error, and a worker that
        died or failed mid-merge surfaces as an :class:`EngineError`
        naming the shard, wrapped with publish context instead of a bare
        pipe error — no torn snapshot is ever swapped in (the store only
        updates after a successful merge).
        """
        self._require_initialized()
        try:
            return super().publish(event_offset=event_offset, window=window)
        except SupervisionError:
            raise
        except EngineError as exc:
            raise EngineError(f"publish failed: {exc}") from None

    # ------------------------------------------------------------------
    # Decay (exponential forgetting)
    # ------------------------------------------------------------------

    def _decay_interval(self) -> int:
        spec = self.config.decay_spec()
        return spec.every if spec is not None else 0

    def advance_decay(self, ticks: int = 1) -> None:
        """Broadcast a decay tick to every shard (lockstep clocks).

        Fire-and-forget like applies: the next synchronous gather
        (``result``/``publish``/``export_state``) is the barrier that
        guarantees every shard observed the tick. Supervised engines log
        the tick (replayed in stream order during recovery, so a rebuilt
        shard's decay clock lands on the same value) and contain
        per-shard failures exactly as :meth:`_apply_supervised` does.
        """
        if self.config.decay is None:
            super().advance_decay(ticks)
        self._require_initialized()
        if self.supervisor is None:
            self._backend.advance(ticks)
            self.stats.decay_ticks += ticks
            return
        self.supervisor.record_advance(ticks)
        self.stats.decay_ticks += ticks
        backend = self._backend
        injector_on = _faults.current_injector() is not None
        for shard in range(self.shards):
            if shard in backend.failed_shards:
                continue
            try:
                if injector_on:
                    _faults.fire(
                        "coordinator.send", op="advance", shard=shard,
                        incarnation=backend.incarnations[shard],
                        kill=backend.kill_callable(shard),
                    )
                backend.advance_one(shard, ticks)
            except (EngineError, _faults.InjectedFault) as exc:
                backend.mark_failed(shard, str(exc))
        if backend.failed_shards:
            self._recover()

    # ------------------------------------------------------------------

    def shard_stats(self) -> List[Dict[str, int]]:
        """Per-shard maintenance counter snapshots, in shard order."""
        self._require_initialized()
        return self._gather_with_recovery(lambda: self._backend.stats())

    def aggregate_stats(self) -> Dict[str, int]:
        """Summed per-shard counters (``view:*`` entries sum entry counts).

        Also refreshes the coordinator's ``stats.view_sizes`` so memory
        accounting reflects the shards' current materializations.
        """
        totals: Dict[str, int] = {}
        for snapshot in self.shard_stats():
            for key, value in snapshot.items():
                if key.startswith("decay_"):
                    # Shards tick in lockstep, so summing would report
                    # shards x the logical clock; the max is the truth.
                    totals[key] = max(totals.get(key, 0), int(value))
                else:
                    totals[key] = totals.get(key, 0) + int(value)
        self.stats.view_sizes = {
            key[len("view:"):]: value
            for key, value in totals.items()
            if key.startswith("view:")
        }
        return totals

    def memory_report(self) -> Dict[str, Dict[str, int]]:
        """Per-view totals across shards (entries, payload weight, indexes)."""
        self._require_initialized()
        merged: Dict[str, Dict[str, int]] = {}
        for report in self._gather_with_recovery(lambda: self._backend.memory()):
            for view_name, entry in report.items():
                target = merged.setdefault(view_name, {})
                for field, value in entry.items():
                    target[field] = target.get(field, 0) + int(value)
        return merged

    def total_view_tuples(self) -> int:
        return sum(
            entry.get("entries", 0) for entry in self.memory_report().values()
        )

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop shard workers (idempotent); the engine needs
        :meth:`initialize` (or :meth:`import_state`) again afterwards."""
        if self._backend is not None:
            self._backend.close()
            self._backend = None
            self._was_closed = True
        self._initialized = False

    def _require_initialized(self) -> None:
        if not self._initialized and self._was_closed:
            raise EngineError(
                "ShardedEngine is closed; call initialize() or "
                "import_state() to reopen it"
            )
        super()._require_initialized()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    #: Sharded snapshots are written in the *global* normal form — the
    #: same "views" payload a plain FIVMEngine over the whole database
    #: would export — so FIVM and sharded engines of any shard count
    #: restore each other's checkpoints.
    state_payload = "views"

    def config_provenance(self) -> Dict[str, Any]:
        """The config recorded into exports, with backend/transport
        resolved to what actually ran (``"auto"`` would say nothing)."""
        data = self.config.to_dict()
        data["backend"] = self.backend_name
        data["transport"] = self.transport_name
        return data

    def _export_payload(self) -> dict:
        """Gather per-shard view snapshots and merge them ring-additively.

        Views whose subtree touches a routed relation partition (or sum)
        across shards, so their per-shard copies combine with the ring's
        addition — multilinearity of the join makes the merged view equal
        the unsharded engine's, the same argument behind :meth:`result`.
        Views over broadcast relations only are replicated identically on
        every shard, so one copy is taken instead of a sum. Under the shm
        transport the workers run this merge tree-wise among themselves
        (same pairwise fold, same bits) and the backend returns the
        single merged part.

        Worker failures during the gather surface with export context
        (same hardening as :meth:`publish`): the pipes are drained and
        realigned by the backend, and the error names the failed shard.
        """
        try:
            states = self._gather_with_recovery(
                lambda: self._backend.export_states()
            )
        except SupervisionError:
            raise
        except EngineError as exc:
            raise EngineError(f"export_state failed: {exc}") from None
        ring = self.tree.plan.ring
        keys = {name: node.key for name, node in self.tree.views.items()}
        views = _merge_view_states(
            [state["views"] for state in states],
            keys, ring, set(self._broadcast_only_views),
        )
        return {"views": views, "source_shards": self.shards}

    def _import_payload(self, state) -> None:
        """Restore a "views" snapshot, re-partitioned to this shard count.

        The snapshot's global views are split through the shard router:
        views keyed on all shard attributes hash-partition entry by entry
        (every base tuple contributing to an entry shares the entry's
        shard-attribute values, so the entry belongs to exactly one
        shard); views over broadcast relations only are replicated; the
        remaining views — aggregates *above* the shard attributes, e.g.
        the root — are recomputed per shard from their already-partitioned
        children, which is exact by definition of the view tree. A
        checkpoint written at N shards therefore restores at any M
        (including M=1 and into a plain FIVMEngine) with results
        identical to uninterrupted ingestion.
        """
        views = state["views"]
        missing = set(self.tree.views) - set(views)
        unexpected = set(views) - set(self.tree.views)
        if missing or unexpected:
            raise EngineError(
                f"snapshot does not match the view tree "
                f"(missing={sorted(missing)}, unexpected={sorted(unexpected)})"
            )
        shard_states = self._shard_states_from_views(views)
        self.close()
        self._make_backend(states=shard_states)
        if self.supervisor is not None:
            # The restored snapshot is the recovery baseline until the
            # next export refreshes it.
            self.supervisor.accept_baseline(views)

    def _shard_states_from_views(self, views: Dict[str, Dict]) -> List[dict]:
        """Per-shard importable state dicts from a global views snapshot."""
        shard_views = self._partition_views(views)
        header = {
            "format_version": self.STATE_FORMAT_VERSION,
            "payload": FIVMEngine.state_payload,
            "strategy": FIVMEngine.strategy,
            "query": self.query.name,
        }
        return [
            # Per-shard maintenance counters restart at zero; the
            # coordinator's restored stats carry the logical stream totals.
            dict(header, views=per_shard, stats={})
            for per_shard in shard_views
        ]

    def export_state(self) -> Dict[str, Any]:
        state = super().export_state()
        if self.supervisor is not None:
            # Every export is a fresh recovery baseline: the replay log
            # restarts empty, so checkpoints double as log truncation.
            self.supervisor.accept_baseline(state["views"])
        return state

    def _after_restore(self) -> None:
        self._refresh_view_sizes()

    # ------------------------------------------------------------------
    # Supervision: recovery
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Engine liveness plus supervisor recovery statistics."""
        report = super().health()
        if self.supervisor is not None:
            report["supervised"] = True
            report.update(self.supervisor.health())
            backend = self._backend
            if backend is not None and backend.failed_shards:
                report["status"] = "recovering"
                report["failed_shards"] = sorted(backend.failed_shards)
        return report

    def _gather_with_recovery(self, gather: Callable[[], Any]) -> Any:
        """Run a synchronous gather, healing failed shards and retrying.

        Unsupervised engines call the gather straight through. Supervised
        ones retry after each recovery round; gathers are read-only, so a
        retry is idempotent. An error with *no* shard marked failed is a
        logic error (or a closed backend) and propagates as-is; the
        recovery budget inside :meth:`_recover` bounds the loop.
        """
        if self.supervisor is None:
            return gather()
        while True:
            try:
                return gather()
            except SupervisionError:
                raise
            except EngineError:
                backend = self._backend
                if backend is None or not backend.failed_shards:
                    raise
                self._recover()

    def _recover(self) -> None:
        """Rebuild every failed shard: respawn from the re-partitioned
        baseline, replay the post-baseline log, rejoin the fleet.

        Runs under the supervisor's budget: each round of recoveries
        counts toward ``MAX_CONSECUTIVE_RECOVERIES`` (with exponential
        backoff between rounds) and a blown budget closes the engine and
        raises :class:`SupervisionError` — fail-stop stays the backstop.
        """
        supervisor = self.supervisor
        backend = self._backend
        if supervisor is None or backend is None:
            return
        while backend.failed_shards:
            failed = sorted(backend.failed_shards)
            error = "; ".join(
                backend.failures.get(shard, f"shard {shard} failed")
                for shard in failed
            )
            started = time.monotonic()
            try:
                supervisor.begin_recovery(failed, error)
            except SupervisionError:
                self.close()
                raise
            success = True
            try:
                shard_states = self._shard_states_from_views(
                    supervisor.baseline_views()
                )
                for shard in failed:
                    try:
                        backend.respawn(shard, state=shard_states[shard])
                        self._replay_shard(shard)
                        backend.clear_failed(shard)
                    except (EngineError, _faults.InjectedFault) as exc:
                        backend.mark_failed(
                            shard, f"recovery of shard {shard} failed: {exc}"
                        )
                        success = False
            except SupervisionError:
                supervisor.end_recovery(time.monotonic() - started, False)
                self.close()
                raise
            supervisor.end_recovery(time.monotonic() - started, success)

    def _replay_shard(self, shard: int) -> None:
        """Re-deliver the post-baseline log to a freshly respawned shard.

        Each logged delta is re-split through the deterministic router
        and only ``shard``'s slice is delivered (dict wire form: the dict
        and columnar forms build identical engine state, so replay is
        bit-compatible with whatever transport carried the original).
        The trailing stats gather is the barrier that flushes the
        fire-and-forget replay queue and surfaces any parked failure.
        """
        backend = self._backend
        schemas = self.router.schemas
        for entry in self.supervisor.log.entries:
            if entry[0] == "advance":
                backend.advance_one(shard, entry[1])
                continue
            _kind, name, data = entry
            delta = Relation(schemas[name], name=name)
            delta.data = data
            for target, sub in self.router.split(name, delta):
                if target == shard:
                    backend.apply(shard, name, sub)
                    break
        backend.gather_one(shard, "stats")

    def _view_relations(self) -> Dict[str, set]:
        """``view name -> base relations in its subtree`` (bottom-up)."""
        relations: Dict[str, set] = {}
        for node in self.tree.all_views():
            covered = set()
            if node.relation is not None:
                covered.add(node.relation)
            for child in node.children:
                covered |= relations[child.name]
            relations[node.name] = covered
        return relations

    def _partition_views(self, views: Dict[str, Dict]) -> List[Dict[str, Dict]]:
        """Split global view materializations into per-shard slices."""
        ring = self.tree.plan.ring
        attrs = self.router.attrs
        broadcast_only = set(self._broadcast_only_views)
        per_shard: List[Dict[str, Dict]] = [{} for _ in range(self.shards)]
        for node in self.tree.all_views():  # children before parents
            name = node.name
            data = views[name]
            if name in broadcast_only:
                # Identical replica on every shard (and a copy per shard:
                # workers mutate their views independently afterwards).
                for shard in range(self.shards):
                    per_shard[shard][name] = dict(data)
            elif set(attrs) <= set(node.key):
                positions = tuple(node.key.index(attr) for attr in attrs)
                buckets: List[Dict] = [{} for _ in range(self.shards)]
                if self.shards == 1:
                    buckets[0] = dict(data)
                else:
                    shards = self.shards
                    for key, payload in data.items():
                        hook = tuple(key[i] for i in positions)
                        buckets[shard_hash(hook) % shards][key] = payload
                for shard in range(self.shards):
                    per_shard[shard][name] = buckets[shard]
            elif node.is_leaf:  # pragma: no cover - defensive
                # Unreachable for valid shard plans: a routed relation
                # contains every shard attribute, and shard attributes are
                # order variables, hence part of the leaf key.
                raise EngineError(
                    f"cannot re-partition snapshot: leaf view {name!r} of "
                    f"routed relation {node.relation!r} lacks shard "
                    f"attributes {attrs!r} in its key {node.key!r}"
                )
            else:
                # The shard attributes were marginalized at or below this
                # node, so per-shard values are not determined by the key.
                # Recompute from the already-partitioned children — the
                # same join+marginalize step evaluation uses, exact per
                # shard and cheap: these views sit at/above the shard
                # variable, the smallest materializations of the tree.
                lifts = {
                    attr: self.tree.plan.lifts[attr] for attr in node.lifted
                }
                for shard in range(self.shards):
                    children = []
                    for child in node.children:
                        relation = Relation(child.key, ring)
                        relation.data = per_shard[shard][child.name]
                        children.append(relation)
                    children.sort(key=len)
                    joined = children[0]
                    for child in children[1:]:
                        joined = joined.join(child)
                    per_shard[shard][name] = joined.marginalize(
                        node.key, lifts
                    ).data
        return per_shard

    # ------------------------------------------------------------------

    def _refresh_view_sizes(self) -> None:
        try:
            self.aggregate_stats()
        except EngineError:  # pragma: no cover - defensive
            pass

    def describe(self) -> str:
        """One-line summary for benchmark tables and logs."""
        cores = os.cpu_count() or 1
        backend = self.backend_name
        if backend == "process":
            backend = f"process/{self.transport_name}"
        return (
            f"{self.strategy} x{self.shards} ({backend}, "
            f"hash on {'/'.join(self.shard_plan.attrs)}, "
            f"routed={len(self.shard_plan.routed)}, "
            f"broadcast={len(self.shard_plan.broadcast)}, {cores} cores)"
        )
