"""Sharded multi-core ingestion: one F-IVM engine per worker process.

The paper's C++ system sustains high update rates with compiled triggers;
a pure-Python reproduction is bounded by the interpreter on one core.
:class:`ShardedEngine` recovers throughput by horizontal partitioning:
the coordinator hash-routes every delta on the shard attributes a
:class:`~repro.viewtree.builder.ShardPlan` derives from the view tree,
each shard runs a full :class:`~repro.engine.fivm.FIVMEngine` over its
slice of the database, and the query result is the ring-sum of the
per-shard root views (multilinearity of the join makes that exact — see
:mod:`repro.data.sharding`).

Two backends share one protocol:

- ``"serial"`` keeps the shard engines in-process. No parallelism, but
  identical routing/merging semantics — this is what the determinism
  tests sweep and the fallback on platforms without ``fork``.
- ``"process"`` forks one worker per shard. Deltas travel to workers over
  pipes as plain ``key -> multiplicity`` dicts (fire-and-forget, so the
  coordinator routes batch *n+1* while workers maintain batch *n*);
  ``result()``/``shard_stats()``/``memory_report()`` are synchronous
  fan-out/fan-in points. Fork start is required because payload plans
  hold lifting closures that cannot cross a spawn boundary — workers
  inherit the query object instead of unpickling it.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.sharding import ShardRouter
from repro.engine.base import EngineStatistics, MaintenanceEngine
from repro.engine.fivm import FIVMEngine
from repro.errors import EngineError
from repro.query.query import Query
from repro.query.variable_order import VariableOrder
from repro.viewtree.builder import ShardPlan, build_shard_plan, build_view_tree

__all__ = ["ShardedEngine", "available_backends", "resolve_backend"]

BACKENDS = ("serial", "process")


def available_backends() -> Tuple[str, ...]:
    """Backends usable on this platform (``process`` needs ``fork``)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return BACKENDS
    return ("serial",)


def resolve_backend(backend: str, shards: int) -> str:
    """Resolve ``"auto"`` and validate an explicit choice."""
    if backend == "auto":
        if shards > 1 and "process" in available_backends():
            return "process"
        return "serial"
    if backend not in BACKENDS:
        raise EngineError(
            f"unknown shard backend {backend!r}; expected one of "
            f"{('auto',) + BACKENDS}"
        )
    if backend == "process" and "process" not in available_backends():
        raise EngineError(
            "the process backend needs the fork start method "
            "(unavailable on this platform); use backend='serial'"
        )
    return backend


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class _SerialBackend:
    """All shard engines live in the coordinator process."""

    name = "serial"

    def __init__(
        self,
        factory: Callable[[], MaintenanceEngine],
        databases: List[Database],
    ):
        self.engines = [factory() for _ in databases]
        for engine, database in zip(self.engines, databases):
            engine.initialize(database)

    def apply(self, shard: int, relation_name: str, delta: Relation) -> None:
        self.engines[shard].apply(relation_name, delta)

    def results(self) -> List[Dict]:
        return [engine.result().data for engine in self.engines]

    def stats(self) -> List[Dict[str, int]]:
        return [engine.stats.snapshot() for engine in self.engines]

    def memory(self) -> List[Dict[str, Dict[str, int]]]:
        return [engine.memory_report() for engine in self.engines]

    def close(self) -> None:
        pass


def _shard_worker(conn, factory, database) -> None:
    """Worker loop: build the engine, then serve the coordinator's pipe.

    Every reply is ``("ok", payload)`` or ``("error", message)``; applies
    are fire-and-forget, so an apply failure is parked and surfaced at
    the next synchronous exchange.
    """
    try:
        engine = factory()
        engine.initialize(database)
        schemas = {
            name: engine.query.schema_of(name).attributes
            for name in engine.query.relation_names
        }
    except Exception as exc:  # pragma: no cover - init failures are rare
        conn.send(("error", f"shard initialization failed: {exc!r}"))
        conn.close()
        return
    conn.send(("ok", "ready"))
    failure: Optional[str] = None
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        op = message[0]
        if op == "stop":
            break
        try:
            if failure is not None:
                if op != "apply":
                    conn.send(("error", failure))
            elif op == "apply":
                relation_name, data = message[1], message[2]
                delta = Relation(schemas[relation_name], name=relation_name)
                delta.data = data
                engine.apply(relation_name, delta)
            elif op == "result":
                conn.send(("ok", engine.result().data))
            elif op == "stats":
                conn.send(("ok", engine.stats.snapshot()))
            elif op == "memory":
                conn.send(("ok", engine.memory_report()))
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except Exception as exc:
            failure = f"shard worker failed on {op!r}: {exc!r}"
            if op != "apply":
                conn.send(("error", failure))
    conn.close()


class _ProcessBackend:
    """One forked worker process per shard, one duplex pipe each."""

    name = "process"

    def __init__(
        self,
        factory: Callable[[], MaintenanceEngine],
        databases: List[Database],
    ):
        context = multiprocessing.get_context("fork")
        self.connections = []
        self.processes = []
        try:
            for database in databases:
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_worker,
                    args=(child_conn, factory, database),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self.connections.append(parent_conn)
                self.processes.append(process)
            for shard, conn in enumerate(self.connections):
                self._receive(shard, conn)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------

    def apply(self, shard: int, relation_name: str, delta: Relation) -> None:
        try:
            self.connections[shard].send(("apply", relation_name, delta.data))
        except (BrokenPipeError, OSError) as exc:
            raise EngineError(f"shard {shard} worker is gone: {exc!r}") from None

    def results(self) -> List[Dict]:
        return self._gather("result")

    def stats(self) -> List[Dict[str, int]]:
        return self._gather("stats")

    def memory(self) -> List[Dict[str, Dict[str, int]]]:
        return self._gather("memory")

    def close(self) -> None:
        for conn in self.connections:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self.processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1.0)
        for conn in self.connections:
            conn.close()
        self.connections = []
        self.processes = []

    # ------------------------------------------------------------------

    def _gather(self, op: str) -> List[Any]:
        # Fan out first so shards compute concurrently, then fan in.
        for shard, conn in enumerate(self.connections):
            try:
                conn.send((op,))
            except (BrokenPipeError, OSError) as exc:
                raise EngineError(
                    f"shard {shard} worker is gone: {exc!r}"
                ) from None
        return [
            self._receive(shard, conn)
            for shard, conn in enumerate(self.connections)
        ]

    def _receive(self, shard: int, conn) -> Any:
        try:
            status, payload = conn.recv()
        except EOFError:
            raise EngineError(
                f"shard {shard} worker died without replying"
            ) from None
        if status != "ok":
            raise EngineError(f"shard {shard}: {payload}")
        return payload


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


class ShardedEngine(MaintenanceEngine):
    """Coordinator over ``shards`` F-IVM engines, each owning a slice.

    Parameters
    ----------
    query, order:
        As for :class:`~repro.engine.fivm.FIVMEngine`; every shard builds
        the same tree over its partition.
    shards:
        Number of partitions (>= 1).
    shard_attrs:
        Explicit hash attributes; default: derived from the view tree by
        :func:`~repro.viewtree.builder.build_shard_plan`.
    backend:
        ``"auto"`` (process when ``fork`` exists and ``shards > 1``),
        ``"serial"`` or ``"process"``.
    use_view_index, adaptive_probe:
        Forwarded to every shard's :class:`FIVMEngine`.

    The coordinator's own ``stats`` count what was routed (batches,
    updates, tuples); per-shard maintenance counters are aggregated on
    demand by :meth:`shard_stats` / :meth:`aggregate_stats`. Use as a
    context manager (or call :meth:`close`) to stop worker processes.
    """

    strategy = "fivm-sharded"

    def __init__(
        self,
        query: Query,
        order: Optional[VariableOrder] = None,
        shards: int = 2,
        shard_attrs: Optional[Tuple[str, ...]] = None,
        backend: str = "auto",
        use_view_index: bool = True,
        adaptive_probe: bool = True,
    ):
        super().__init__(query)
        if shards < 1:
            raise EngineError("shards must be at least 1")
        self.shards = int(shards)
        self.order = order
        self.use_view_index = bool(use_view_index)
        self.adaptive_probe = bool(adaptive_probe)
        self.tree = build_view_tree(query, order=order)
        self.shard_plan: ShardPlan = build_shard_plan(self.tree, attrs=shard_attrs)
        schemas = {
            name: query.schema_of(name).attributes
            for name in query.relation_names
        }
        self.router = ShardRouter(schemas, self.shard_plan.attrs, self.shards)
        if set(self.router.routed) != set(self.shard_plan.routed):
            # Both derive "contains all shard attrs" independently; if the
            # criteria ever diverge, fail loudly rather than route deltas
            # differently from what the plan (and describe()) reports.
            raise EngineError(
                f"shard plan routed {self.shard_plan.routed!r} but the "
                f"router derived {self.router.routed!r}"
            )
        self.backend_name = resolve_backend(backend, self.shards)
        self._backend = None

    # ------------------------------------------------------------------

    def initialize(self, database: Database) -> None:
        self.close()
        partitions = self.router.partition_database(database)
        query, order = self.query, self.order
        use_view_index, adaptive_probe = self.use_view_index, self.adaptive_probe

        def factory() -> FIVMEngine:
            return FIVMEngine(
                query,
                order=order,
                use_view_index=use_view_index,
                adaptive_probe=adaptive_probe,
            )

        if self.backend_name == "process":
            self._backend = _ProcessBackend(factory, partitions)
        else:
            self._backend = _SerialBackend(factory, partitions)
        self.stats = EngineStatistics()
        self._initialized = True
        self._refresh_view_sizes()

    def apply(self, relation_name: str, delta: Relation) -> None:
        self._require_initialized()
        self._check_delta(relation_name, delta)
        if not delta.data:
            return
        self.stats.record_batch(delta)
        for shard, sub_delta in self.router.split(relation_name, delta):
            self._backend.apply(shard, relation_name, sub_delta)

    def result(self) -> Relation:
        """Ring-additive merge of the per-shard root views.

        Shard keys never collide for views keyed below the shard
        attributes, and where they do collide (e.g. the empty root key of
        a full aggregate) the ring's addition combines them — the same
        operation maintenance itself uses, so the merged result is
        exactly the unsharded engine's.
        """
        self._require_initialized()
        root = self.tree.root
        ring = self.tree.plan.ring
        merged = Relation(root.key, ring, name=root.name)
        shard_data = self._backend.results()
        for data in shard_data:
            part = Relation(root.key, ring)
            part.data = dict(data)
            merged.add_inplace(part)
        return merged

    # ------------------------------------------------------------------

    def shard_stats(self) -> List[Dict[str, int]]:
        """Per-shard maintenance counter snapshots, in shard order."""
        self._require_initialized()
        return self._backend.stats()

    def aggregate_stats(self) -> Dict[str, int]:
        """Summed per-shard counters (``view:*`` entries sum entry counts).

        Also refreshes the coordinator's ``stats.view_sizes`` so memory
        accounting reflects the shards' current materializations.
        """
        totals: Dict[str, int] = {}
        for snapshot in self.shard_stats():
            for key, value in snapshot.items():
                totals[key] = totals.get(key, 0) + int(value)
        self.stats.view_sizes = {
            key[len("view:"):]: value
            for key, value in totals.items()
            if key.startswith("view:")
        }
        return totals

    def memory_report(self) -> Dict[str, Dict[str, int]]:
        """Per-view totals across shards (entries, payload weight, indexes)."""
        self._require_initialized()
        merged: Dict[str, Dict[str, int]] = {}
        for report in self._backend.memory():
            for view_name, entry in report.items():
                target = merged.setdefault(view_name, {})
                for field, value in entry.items():
                    target[field] = target.get(field, 0) + int(value)
        return merged

    def total_view_tuples(self) -> int:
        return sum(
            entry.get("entries", 0) for entry in self.memory_report().values()
        )

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop shard workers (idempotent); the engine needs
        :meth:`initialize` again afterwards."""
        if self._backend is not None:
            self._backend.close()
            self._backend = None
        self._initialized = False

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown order
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------

    def _refresh_view_sizes(self) -> None:
        try:
            self.aggregate_stats()
        except EngineError:  # pragma: no cover - defensive
            pass

    def describe(self) -> str:
        """One-line summary for benchmark tables and logs."""
        cores = os.cpu_count() or 1
        return (
            f"{self.strategy} x{self.shards} ({self.backend_name}, "
            f"hash on {'/'.join(self.shard_plan.attrs)}, "
            f"routed={len(self.shard_plan.routed)}, "
            f"broadcast={len(self.shard_plan.broadcast)}, {cores} cores)"
        )
