"""Durable engine checkpoints: a versioned, compressed on-disk format.

A long-running ingestion must be able to stop and resume without
replaying the stream — in F-IVM the materialized ring views *are* the
entire system state, so a checkpoint is exactly an engine state snapshot
(:meth:`~repro.engine.base.MaintenanceEngine.export_state`) made durable.
This module owns the file envelope around those snapshots:

- ``magic || pickled header || (optionally zlib-compressed) pickled state``
- the header is readable without decompressing the state
  (:func:`read_checkpoint_info`), carries the file-format version,
  engine provenance (strategy, payload kind, query name), creation time,
  sizes and free-form metadata; it is parsed with a *restricted*
  unpickler that admits only primitive values, so inspecting a file
  cannot execute code smuggled into its header;
- writes are atomic (unique temp file + ``os.replace``), so a crash
  mid-write never corrupts the previous checkpoint — which is what
  makes :func:`checkpoint_sink` safe as a periodic
  ``apply_stream(checkpoint_every=...)`` hook.

Trust model: the *state* blob holds arbitrary ring payloads and is
therefore a regular pickle — :func:`read_checkpoint` /
:func:`restore_checkpoint` must only be pointed at checkpoints from a
trusted source, like any pickle-based snapshot format. Header-only
inspection (:func:`read_checkpoint_info`, ``repro checkpoint info``) is
safe on untrusted files.

Shard-count portability is a property of the *state* layer, not the file
layer: sharded snapshots are exported in the global normal form (see
:class:`~repro.engine.sharded.ShardedEngine`), so a checkpoint written by
a 4-shard engine restores into a 2-shard, 1-shard or unsharded engine
unchanged.

**Incremental chains.** Between two checkpoints a high-rate stream
usually touches a small fraction of the view entries, so rewriting every
payload is wasted bytes. ``write_checkpoint(..., base=(info, state))``
persists only the delta since ``base`` — per view, the entries that
changed (``set``) and the keys that vanished (``drop``) — under a chain
header: a ``chain_id`` shared by the whole chain, a ``chain_seq``
position and the ``base_file`` it applies on top of. Maintenance never
mutates stored payloads in place (it replaces them), so an unchanged
entry is recognized by object identity and the diff is cheap.
:func:`load_checkpoint_chain` (and :func:`restore_checkpoint`, which
uses it) follows ``base_file`` links back to the full snapshot,
validates every link's chain id and sequence, and replays the deltas in
order — the reconstructed state is byte-for-byte the state a full
checkpoint at the head would have held, so chains inherit shard-count
portability unchanged. :func:`checkpoint_sink` alternates full and
incremental writes (``full_every``) and :func:`resolve_chain_head` finds
the newest restorable file of a chain on disk.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
import time
import uuid
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import CheckpointError
from repro.testing import faults as _faults

__all__ = [
    "CheckpointInfo",
    "write_checkpoint",
    "read_checkpoint",
    "read_checkpoint_info",
    "restore_checkpoint",
    "load_checkpoint_chain",
    "resolve_chain_head",
    "remove_stale_increments",
    "sweep_stale_tmp_files",
    "checkpoint_sink",
]

#: File magic: identifies a file as an F-IVM checkpoint before any
#: unpickling happens.
MAGIC = b"FIVMCKPT"

#: Version of the on-disk envelope (magic/header/blob layout). Distinct
#: from the *state* format version inside
#: (:attr:`~repro.engine.base.MaintenanceEngine.STATE_FORMAT_VERSION`),
#: which the restoring engine validates.
FILE_VERSION = 1

COMPRESSIONS = ("zlib", "none")


@dataclass(frozen=True)
class CheckpointInfo:
    """Header of one checkpoint file (everything but the state itself)."""

    path: str
    file_version: int
    format_version: int
    strategy: str
    query: str
    payload: str
    compression: str
    created_at: float
    state_bytes: int
    file_bytes: int
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: :meth:`EngineConfig.to_dict` provenance recorded by the exporting
    #: engine (empty for checkpoints written before configs existed).
    config: Dict[str, Any] = field(default_factory=dict)
    #: Incremental-chain header: whether this file holds a delta, the id
    #: shared by its chain, its position in the chain (0 = the full
    #: snapshot) and the file the delta applies on top of (basename,
    #: resolved against this file's directory).
    incremental: bool = False
    chain_id: str = ""
    chain_seq: int = 0
    base_file: str = ""

    def describe(self) -> str:
        """One-line summary for CLI output and logs."""
        ratio = self.state_bytes / self.file_bytes if self.file_bytes else 0.0
        chain = ""
        if self.incremental:
            chain = f" [incremental #{self.chain_seq} on {self.base_file}]"
        return (
            f"{self.path}: query={self.query!r} strategy={self.strategy} "
            f"payload={self.payload} v{self.format_version} "
            f"{self.file_bytes} bytes on disk ({self.state_bytes} raw, "
            f"{self.compression}, {ratio:.1f}x){chain}"
        )


def write_checkpoint(
    engine,
    path: str,
    compression: str = "zlib",
    level: int = 6,
    metadata: Optional[Mapping[str, Any]] = None,
    base: Optional[Tuple[CheckpointInfo, Mapping[str, Any]]] = None,
    state: Optional[Dict[str, Any]] = None,
) -> CheckpointInfo:
    """Export ``engine``'s state and write it to ``path`` atomically.

    ``metadata`` is stored verbatim in the header — callers use it to
    record how to rebuild the stream (dataset, seed, events applied).
    Stick to primitive values (numbers, strings, lists, dicts): the
    header is read back with a restricted unpickler that rejects
    arbitrary objects. Returns the written :class:`CheckpointInfo`.

    ``base=(info, state)`` — the info and *state dict* of the previously
    written checkpoint — switches to an **incremental** write: only the
    view entries that changed since ``base`` (plus the small header
    sections) are persisted, chained to the base file via the header's
    chain fields. Restore the result with :func:`restore_checkpoint`
    (which follows the chain) — ``read_checkpoint`` on it returns the
    raw delta. ``state`` passes a pre-exported state dict so callers
    that keep one for diffing (the sink) export once, not twice.
    """
    if compression not in COMPRESSIONS:
        raise CheckpointError(
            f"unknown compression {compression!r}; expected one of {COMPRESSIONS}"
        )
    if state is None:
        state = engine.export_state()
    chain_header: Dict[str, Any]
    if base is not None:
        base_info, base_state = base
        body_state = _diff_states(state, base_state, base_info, path)
        chain_header = {
            "incremental": True,
            "chain_id": base_info.chain_id or base_info.path,
            "chain_seq": base_info.chain_seq + 1,
            "base_file": os.path.basename(base_info.path),
        }
    else:
        body_state = state
        chain_header = {
            "incremental": False,
            # Fresh chain: every incremental stacked on this snapshot
            # (directly or transitively) inherits this id.
            "chain_id": uuid.uuid4().hex,
            "chain_seq": 0,
            "base_file": "",
        }
    blob = pickle.dumps(body_state, protocol=pickle.HIGHEST_PROTOCOL)
    body = zlib.compress(blob, level) if compression == "zlib" else blob
    header = {
        "file_version": FILE_VERSION,
        "format_version": state.get("format_version"),
        "strategy": str(state.get("strategy")),
        "query": str(state.get("query")),
        "payload": str(state.get("payload")),
        "compression": compression,
        "created_at": time.time(),
        "state_bytes": len(blob),
        "metadata": dict(metadata or {}),
        # EngineConfig provenance travels with the snapshot; primitives
        # only, so the restricted header unpickler admits it.
        "config": dict(state.get("config") or {}),
        **chain_header,
    }
    path = os.fspath(path)
    # Unique scratch name in the target directory: concurrent writers to
    # the same path each publish a complete file via os.replace (last one
    # wins) instead of truncating each other's in-progress temp file.
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    keep_tmp = False
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(MAGIC)
            pickle.dump(header, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.write(body)
        spec = _faults.fire("checkpoint.write")
        if spec is not None and spec.kind == "crash":
            # Simulate a process dying between write and rename: the
            # temp file is orphaned exactly as a SIGKILL here leaves it
            # (the finally below cannot run in a killed process either).
            keep_tmp = True
            raise _faults.InjectedFault(
                f"injected crash before publishing {path!r}"
            )
        os.replace(tmp_path, path)
        spec = _faults.fire("checkpoint.finish")
        if spec is not None and spec.kind == "truncate":
            with open(path, "r+b") as handle:
                handle.truncate(spec.bytes_kept)
    finally:
        if not keep_tmp and os.path.exists(tmp_path):  # pragma: no cover
            os.unlink(tmp_path)
    return _info(path, header, os.path.getsize(path))


def read_checkpoint_info(path: str) -> CheckpointInfo:
    """Read a checkpoint's header without loading (or decompressing) state."""
    with open(path, "rb") as handle:
        header = _read_header(handle, path)
    return _info(path, header, os.path.getsize(path))


def read_checkpoint(path: str) -> Tuple[CheckpointInfo, Dict[str, Any]]:
    """Read a checkpoint file; returns ``(info, engine state dict)``."""
    with open(path, "rb") as handle:
        header = _read_header(handle, path)
        body = handle.read()
    if header["compression"] == "zlib":
        try:
            blob = zlib.decompress(body)
        except zlib.error as exc:
            raise CheckpointError(
                f"corrupt or truncated checkpoint state in {path!r}: {exc}"
            ) from None
    else:
        blob = body
    if len(blob) != header["state_bytes"]:
        raise CheckpointError(
            f"truncated checkpoint {path!r}: state is {len(blob)} bytes, "
            f"header promises {header['state_bytes']}"
        )
    try:
        state = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(
            f"unreadable checkpoint state in {path!r}: {exc!r}"
        ) from None
    return _info(path, header, os.path.getsize(path)), state


def restore_checkpoint(engine, path: str) -> CheckpointInfo:
    """Read ``path`` and import its state into ``engine``.

    Incremental checkpoints are resolved transparently: the chain of
    ``base_file`` links is followed back to the full snapshot and the
    deltas replayed in order (:func:`load_checkpoint_chain`), so
    restoring from a chain head is indistinguishable from restoring a
    full checkpoint written at the same moment.

    The engine validates provenance (query name, state format version,
    payload kind) and raises :class:`~repro.errors.EngineError` on any
    mismatch; file-level corruption or a broken chain raises
    :class:`~repro.errors.CheckpointError`.
    """
    info, state = load_checkpoint_chain(path)
    engine.import_state(state)
    return info


def load_checkpoint_chain(path: str) -> Tuple[CheckpointInfo, Dict[str, Any]]:
    """Load ``path`` and reconstruct the full engine state it denotes.

    A full checkpoint loads directly. An incremental one walks its
    ``base_file`` links (resolved against the file's own directory) back
    to the chain's full snapshot — validating at every link that the
    base exists, shares the delta's ``chain_id`` and sits at exactly the
    preceding ``chain_seq`` — then replays the per-view ``set``/``drop``
    deltas oldest-first. Returns ``(head info, reconstructed state)``.
    """
    info, state = read_checkpoint(path)
    if not info.incremental:
        return info, state
    directory = os.path.dirname(os.fspath(path)) or "."
    deltas: List[Tuple[CheckpointInfo, Dict[str, Any]]] = [(info, state)]
    current = info
    seen = {os.path.abspath(os.fspath(path))}
    while current.incremental:
        if not current.base_file:
            raise CheckpointError(
                f"incremental checkpoint {current.path!r} names no base file"
            )
        base_path = os.path.join(directory, current.base_file)
        if os.path.abspath(base_path) in seen:
            raise CheckpointError(
                f"checkpoint chain at {path!r} is cyclic via {base_path!r}"
            )
        seen.add(os.path.abspath(base_path))
        if not os.path.exists(base_path):
            raise CheckpointError(
                f"incremental checkpoint {current.path!r} needs base "
                f"{base_path!r}, which does not exist — the chain cannot "
                f"be restored; newest restorable full checkpoint: "
                f"{_newest_restorable_full(path)}"
            )
        try:
            base_info, base_state = read_checkpoint(base_path)
        except CheckpointError as exc:
            # Name the broken link (not just the head the caller asked
            # for) and where recovery can still restart from.
            raise CheckpointError(
                f"checkpoint chain at {os.fspath(path)!r} is broken at "
                f"link {base_path!r}: {exc}; newest restorable full "
                f"checkpoint: {_newest_restorable_full(path)}"
            ) from None
        if (
            base_info.chain_id != current.chain_id
            or base_info.chain_seq != current.chain_seq - 1
        ):
            raise CheckpointError(
                f"checkpoint chain broken at {base_path!r}: expected chain "
                f"{current.chain_id!r} seq {current.chain_seq - 1}, found "
                f"chain {base_info.chain_id!r} seq {base_info.chain_seq} — "
                "the base was overwritten by a newer chain"
            )
        deltas.append((base_info, base_state))
        current = base_info
    full_info, full_state = deltas.pop()
    if "views" not in full_state:
        raise CheckpointError(
            f"chain base {full_info.path!r} holds no 'views' section"
        )
    views = {name: dict(data) for name, data in full_state["views"].items()}
    state_out = dict(full_state)
    for delta_info, delta_state in reversed(deltas):
        views_delta = delta_state.get("views_delta")
        if not isinstance(views_delta, dict):
            raise CheckpointError(
                f"incremental checkpoint {delta_info.path!r} holds no "
                "'views_delta' section"
            )
        if set(views_delta) != set(views):
            raise CheckpointError(
                f"incremental checkpoint {delta_info.path!r} covers views "
                f"{sorted(views_delta)} but the chain base holds "
                f"{sorted(views)}"
            )
        for name, change in views_delta.items():
            data = views[name]
            for key in change["drop"]:
                data.pop(key, None)
            data.update(change["set"])
        state_out = dict(delta_state)
        state_out.pop("views_delta", None)
    state_out["views"] = views
    return info, state_out


def _newest_restorable_full(path: str) -> str:
    """Where recovery can restart when a chain link is broken.

    Strips the ``.incN`` suffixes off ``path`` to find the chain's full
    snapshot and checks it is present and itself a full (non-incremental)
    checkpoint; ``'none found'`` otherwise.
    """
    root = re.sub(r"(\.inc\d+)+$", "", os.fspath(path))
    try:
        info = read_checkpoint_info(root)
    except (OSError, CheckpointError):
        return "none found"
    if info.incremental:
        return "none found"
    return repr(root)


def resolve_chain_head(path: str) -> str:
    """The newest restorable checkpoint of the chain rooted at ``path``.

    ``checkpoint_sink(full_every=K)`` writes the full snapshot at
    ``path`` and deltas at ``path.inc1``, ``path.inc2``, …; recovery
    wants the highest increment that still belongs to the *current*
    chain. Walks ``path.incN`` upward while each file exists, parses and
    matches the full snapshot's chain id at the expected sequence —
    stale leftovers from an older chain (or corrupt files) stop the walk
    — and returns the last good path (``path`` itself when no usable
    increment exists).
    """
    info = read_checkpoint_info(path)
    head = os.fspath(path)
    seq = 1
    while True:
        candidate = f"{path}.inc{seq}"
        if not os.path.exists(candidate):
            break
        try:
            candidate_info = read_checkpoint_info(candidate)
        except CheckpointError:
            break
        if (
            not candidate_info.incremental
            or candidate_info.chain_id != info.chain_id
            or candidate_info.chain_seq != seq
        ):
            break
        head = candidate
        seq += 1
    return head


def checkpoint_sink(
    path: str,
    compression: str = "zlib",
    level: int = 6,
    metadata: Optional[Mapping[str, Any]] = None,
    full_every: int = 1,
) -> Callable:
    """Periodic-snapshot callback for ``apply_stream(checkpoint_every=N)``.

    With the default ``full_every=1`` every invocation rewrites ``path``
    atomically in full (latest snapshot wins — recovery wants the most
    recent state, and atomic replace means a crash mid-write leaves the
    previous snapshot intact). ``full_every=K`` amortizes the write
    cost: every K-th checkpoint is a full snapshot at ``path`` and the
    K-1 in between are incremental deltas at ``path.inc1`` …
    ``path.inc(K-1)``, each chained on its predecessor; a new full
    snapshot removes the previous chain's increments. Recover with
    ``restore_checkpoint(engine, resolve_chain_head(path))``. The stream
    position is recorded as ``events_processed`` in the header metadata
    so recovery knows where to resume the stream.
    """
    if full_every < 1:
        raise CheckpointError(f"full_every must be >= 1, got {full_every}")
    #: (info, state) of the last written checkpoint and how many have
    #: been written — closure state; the held state dict freezes its key
    #: dicts at export time, so later maintenance cannot mutate it.
    last: List[Optional[Tuple[CheckpointInfo, Dict[str, Any]]]] = [None]
    written = [0]

    def on_checkpoint(engine, events_processed: int) -> None:
        # Orphans from a previous writer killed mid-write are swept
        # before this writer stages its own scratch file.
        sweep_stale_tmp_files(path)
        meta = dict(metadata or {})
        meta["events_processed"] = events_processed
        position = written[0]
        written[0] += 1
        state = engine.export_state() if full_every > 1 else None
        if last[0] is None or position % full_every == 0:
            info = write_checkpoint(
                engine, path, compression=compression, level=level,
                metadata=meta, state=state,
            )
            remove_stale_increments(path)
        else:
            target = f"{path}.inc{position % full_every}"
            info = write_checkpoint(
                engine, target, compression=compression, level=level,
                metadata=meta, base=last[0], state=state,
            )
        if full_every > 1:
            last[0] = (info, state)

    return on_checkpoint


def remove_stale_increments(path: str) -> None:
    """Drop ``path.incN`` leftovers after a fresh full snapshot lands."""
    seq = 1
    while True:
        candidate = f"{path}.inc{seq}"
        if not os.path.exists(candidate):
            break
        try:
            os.unlink(candidate)
        except OSError:  # pragma: no cover - concurrent cleanup
            break
        seq += 1


def sweep_stale_tmp_files(path: str) -> List[str]:
    """Remove orphaned write-scratch files next to checkpoint ``path``.

    :func:`write_checkpoint` stages into ``<basename>.<random>.tmp`` and
    publishes with an atomic rename; every exit path it controls unlinks
    the scratch file, but a process killed between write and rename
    leaves it behind. This sweeps scratch files matching ``path`` (and
    its ``path.incN`` increments) so a crash-looping writer cannot fill
    the directory with orphans. Only the exact mkstemp pattern is
    touched — never real checkpoints, whose names carry no ``.tmp``
    suffix (``resolve_chain_head`` likewise never looks at them).
    Returns the removed paths.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    pattern = re.compile(
        re.escape(os.path.basename(path)) + r"(\.inc\d+)?\..+\.tmp"
    )
    removed: List[str] = []
    try:
        names = os.listdir(directory)
    except OSError:  # pragma: no cover - directory vanished
        return removed
    for name in names:
        if pattern.fullmatch(name):
            target = os.path.join(directory, name)
            try:
                os.unlink(target)
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            removed.append(target)
    return removed


def _diff_states(
    state: Mapping[str, Any],
    base_state: Mapping[str, Any],
    base_info: CheckpointInfo,
    path: str,
) -> Dict[str, Any]:
    """The delta body persisted by an incremental write.

    Small header sections (stats, serving, config, shard provenance)
    are copied whole; the ``views`` section — the bulk of any snapshot —
    becomes per-view ``{"set": changed entries, "drop": vanished keys}``.
    Unchanged entries are recognized by object identity first
    (maintenance replaces payloads, never mutates them, so an untouched
    entry keeps its object across exports) with a guarded ``==``
    fallback; payloads whose equality is unknowable are re-included,
    which is always correct, just larger.
    """
    views = state.get("views")
    base_views = base_state.get("views")
    if not isinstance(views, dict) or not isinstance(base_views, dict):
        raise CheckpointError(
            f"incremental checkpoint {path!r} needs 'views' snapshots on "
            "both sides (naive/first-order engines checkpoint full state "
            "only)"
        )
    for field_name in ("query", "payload", "format_version"):
        if state.get(field_name) != base_state.get(field_name):
            raise CheckpointError(
                f"cannot chain {path!r} on {base_info.path!r}: "
                f"{field_name} changed from "
                f"{base_state.get(field_name)!r} to {state.get(field_name)!r}"
            )
    if set(views) != set(base_views):
        raise CheckpointError(
            f"cannot chain {path!r} on {base_info.path!r}: view set "
            f"changed from {sorted(base_views)} to {sorted(views)}"
        )
    views_delta: Dict[str, Dict[str, Any]] = {}
    for name, data in views.items():
        base_data = base_views[name]
        changed = {
            key: payload
            for key, payload in data.items()
            if not _payload_unchanged(base_data.get(key, _MISSING), payload)
        }
        dropped = [key for key in base_data if key not in data]
        views_delta[name] = {"set": changed, "drop": dropped}
    delta = {key: value for key, value in state.items() if key != "views"}
    delta["views_delta"] = views_delta
    return delta


#: Sentinel distinguishing "key absent" from any real payload.
_MISSING = object()


def _payload_unchanged(old: Any, new: Any) -> bool:
    if old is new:
        return True
    if old is _MISSING:
        return False
    try:
        equal = old == new
    except Exception:
        return False
    # Rich results (numpy arrays, payloads without a boolean ==) are
    # "unknown" — keep the entry rather than guess.
    return equal is True


# ----------------------------------------------------------------------


class _HeaderUnpickler(pickle.Unpickler):
    """Primitive-values-only unpickler for checkpoint headers.

    Headers hold nothing but dicts, strings and numbers, so any GLOBAL
    opcode is either corruption or a code-execution payload — refuse it.
    """

    def find_class(self, module, name):
        raise CheckpointError(
            f"checkpoint header references {module}.{name}; headers may "
            "only contain primitive values"
        )


def _read_header(handle, path: str) -> Dict[str, Any]:
    magic = handle.read(len(MAGIC))
    if len(magic) < len(MAGIC):
        what = "an empty file" if not magic else f"only {len(magic)} bytes"
        raise CheckpointError(
            f"truncated checkpoint {path!r}: {what}, shorter than the "
            f"{len(MAGIC)}-byte magic"
        )
    if magic != MAGIC:
        raise CheckpointError(
            f"{path!r} is not an F-IVM checkpoint (bad magic {magic!r})"
        )
    try:
        header = _HeaderUnpickler(handle).load()
    except CheckpointError:
        raise
    except EOFError:
        raise CheckpointError(
            f"truncated checkpoint {path!r}: file ends inside the header"
        ) from None
    except Exception as exc:
        raise CheckpointError(
            f"corrupt checkpoint header in {path!r}: {exc!r}"
        ) from None
    if not isinstance(header, dict):
        raise CheckpointError(
            f"corrupt checkpoint header in {path!r}: not a mapping"
        )
    version = header.get("file_version")
    if version != FILE_VERSION:
        raise CheckpointError(
            f"unknown checkpoint file version {version!r} in {path!r}; "
            f"this build reads version {FILE_VERSION}"
        )
    compression = header.get("compression")
    if compression not in COMPRESSIONS:
        raise CheckpointError(
            f"unknown compression {compression!r} in {path!r}"
        )
    missing = [
        key
        for key in (
            "format_version", "strategy", "query", "payload",
            "created_at", "state_bytes",
        )
        if key not in header
    ]
    if missing:
        raise CheckpointError(
            f"corrupt checkpoint header in {path!r}: missing {missing}"
        )
    return header


def _info(path: str, header: Mapping[str, Any], file_bytes: int) -> CheckpointInfo:
    return CheckpointInfo(
        path=os.fspath(path),
        file_version=int(header["file_version"]),
        format_version=int(header["format_version"]),
        strategy=header["strategy"],
        query=header["query"],
        payload=header["payload"],
        compression=header["compression"],
        created_at=float(header["created_at"]),
        state_bytes=int(header["state_bytes"]),
        file_bytes=int(file_bytes),
        metadata=dict(header.get("metadata") or {}),
        config=dict(header.get("config") or {}),
        # Chain fields absent from pre-incremental files read as a plain
        # full checkpoint with no chain identity.
        incremental=bool(header.get("incremental", False)),
        chain_id=str(header.get("chain_id", "")),
        chain_seq=int(header.get("chain_seq", 0)),
        base_file=str(header.get("base_file", "")),
    )
