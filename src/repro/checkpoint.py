"""Durable engine checkpoints: a versioned, compressed on-disk format.

A long-running ingestion must be able to stop and resume without
replaying the stream — in F-IVM the materialized ring views *are* the
entire system state, so a checkpoint is exactly an engine state snapshot
(:meth:`~repro.engine.base.MaintenanceEngine.export_state`) made durable.
This module owns the file envelope around those snapshots:

- ``magic || pickled header || (optionally zlib-compressed) pickled state``
- the header is readable without decompressing the state
  (:func:`read_checkpoint_info`), carries the file-format version,
  engine provenance (strategy, payload kind, query name), creation time,
  sizes and free-form metadata; it is parsed with a *restricted*
  unpickler that admits only primitive values, so inspecting a file
  cannot execute code smuggled into its header;
- writes are atomic (unique temp file + ``os.replace``), so a crash
  mid-write never corrupts the previous checkpoint — which is what
  makes :func:`checkpoint_sink` safe as a periodic
  ``apply_stream(checkpoint_every=...)`` hook.

Trust model: the *state* blob holds arbitrary ring payloads and is
therefore a regular pickle — :func:`read_checkpoint` /
:func:`restore_checkpoint` must only be pointed at checkpoints from a
trusted source, like any pickle-based snapshot format. Header-only
inspection (:func:`read_checkpoint_info`, ``repro checkpoint info``) is
safe on untrusted files.

Shard-count portability is a property of the *state* layer, not the file
layer: sharded snapshots are exported in the global normal form (see
:class:`~repro.engine.sharded.ShardedEngine`), so a checkpoint written by
a 4-shard engine restores into a 2-shard, 1-shard or unsharded engine
unchanged.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import CheckpointError

__all__ = [
    "CheckpointInfo",
    "write_checkpoint",
    "read_checkpoint",
    "read_checkpoint_info",
    "restore_checkpoint",
    "checkpoint_sink",
]

#: File magic: identifies a file as an F-IVM checkpoint before any
#: unpickling happens.
MAGIC = b"FIVMCKPT"

#: Version of the on-disk envelope (magic/header/blob layout). Distinct
#: from the *state* format version inside
#: (:attr:`~repro.engine.base.MaintenanceEngine.STATE_FORMAT_VERSION`),
#: which the restoring engine validates.
FILE_VERSION = 1

COMPRESSIONS = ("zlib", "none")


@dataclass(frozen=True)
class CheckpointInfo:
    """Header of one checkpoint file (everything but the state itself)."""

    path: str
    file_version: int
    format_version: int
    strategy: str
    query: str
    payload: str
    compression: str
    created_at: float
    state_bytes: int
    file_bytes: int
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: :meth:`EngineConfig.to_dict` provenance recorded by the exporting
    #: engine (empty for checkpoints written before configs existed).
    config: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line summary for CLI output and logs."""
        ratio = self.state_bytes / self.file_bytes if self.file_bytes else 0.0
        return (
            f"{self.path}: query={self.query!r} strategy={self.strategy} "
            f"payload={self.payload} v{self.format_version} "
            f"{self.file_bytes} bytes on disk ({self.state_bytes} raw, "
            f"{self.compression}, {ratio:.1f}x)"
        )


def write_checkpoint(
    engine,
    path: str,
    compression: str = "zlib",
    level: int = 6,
    metadata: Optional[Mapping[str, Any]] = None,
) -> CheckpointInfo:
    """Export ``engine``'s state and write it to ``path`` atomically.

    ``metadata`` is stored verbatim in the header — callers use it to
    record how to rebuild the stream (dataset, seed, events applied).
    Stick to primitive values (numbers, strings, lists, dicts): the
    header is read back with a restricted unpickler that rejects
    arbitrary objects. Returns the written :class:`CheckpointInfo`.
    """
    if compression not in COMPRESSIONS:
        raise CheckpointError(
            f"unknown compression {compression!r}; expected one of {COMPRESSIONS}"
        )
    state = engine.export_state()
    blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    body = zlib.compress(blob, level) if compression == "zlib" else blob
    header = {
        "file_version": FILE_VERSION,
        "format_version": state.get("format_version"),
        "strategy": str(state.get("strategy")),
        "query": str(state.get("query")),
        "payload": str(state.get("payload")),
        "compression": compression,
        "created_at": time.time(),
        "state_bytes": len(blob),
        "metadata": dict(metadata or {}),
        # EngineConfig provenance travels with the snapshot; primitives
        # only, so the restricted header unpickler admits it.
        "config": dict(state.get("config") or {}),
    }
    path = os.fspath(path)
    # Unique scratch name in the target directory: concurrent writers to
    # the same path each publish a complete file via os.replace (last one
    # wins) instead of truncating each other's in-progress temp file.
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(MAGIC)
            pickle.dump(header, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.write(body)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):  # pragma: no cover - error cleanup
            os.unlink(tmp_path)
    return _info(path, header, os.path.getsize(path))


def read_checkpoint_info(path: str) -> CheckpointInfo:
    """Read a checkpoint's header without loading (or decompressing) state."""
    with open(path, "rb") as handle:
        header = _read_header(handle, path)
    return _info(path, header, os.path.getsize(path))


def read_checkpoint(path: str) -> Tuple[CheckpointInfo, Dict[str, Any]]:
    """Read a checkpoint file; returns ``(info, engine state dict)``."""
    with open(path, "rb") as handle:
        header = _read_header(handle, path)
        body = handle.read()
    if header["compression"] == "zlib":
        try:
            blob = zlib.decompress(body)
        except zlib.error as exc:
            raise CheckpointError(
                f"corrupt checkpoint state in {path!r}: {exc}"
            ) from None
    else:
        blob = body
    if len(blob) != header["state_bytes"]:
        raise CheckpointError(
            f"truncated checkpoint {path!r}: state is {len(blob)} bytes, "
            f"header promises {header['state_bytes']}"
        )
    try:
        state = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(
            f"unreadable checkpoint state in {path!r}: {exc!r}"
        ) from None
    return _info(path, header, os.path.getsize(path)), state


def restore_checkpoint(engine, path: str) -> CheckpointInfo:
    """Read ``path`` and import its state into ``engine``.

    The engine validates provenance (query name, state format version,
    payload kind) and raises :class:`~repro.errors.EngineError` on any
    mismatch; file-level corruption raises
    :class:`~repro.errors.CheckpointError`.
    """
    info, state = read_checkpoint(path)
    engine.import_state(state)
    return info


def checkpoint_sink(
    path: str,
    compression: str = "zlib",
    level: int = 6,
    metadata: Optional[Mapping[str, Any]] = None,
) -> Callable:
    """Periodic-snapshot callback for ``apply_stream(checkpoint_every=N)``.

    Every invocation rewrites ``path`` atomically (latest snapshot wins —
    recovery wants the most recent state, and atomic replace means a
    crash mid-write leaves the previous snapshot intact). The stream
    position is recorded as ``events_processed`` in the header metadata
    so recovery knows where to resume the stream.
    """

    def on_checkpoint(engine, events_processed: int) -> None:
        meta = dict(metadata or {})
        meta["events_processed"] = events_processed
        write_checkpoint(
            engine, path, compression=compression, level=level, metadata=meta
        )

    return on_checkpoint


# ----------------------------------------------------------------------


class _HeaderUnpickler(pickle.Unpickler):
    """Primitive-values-only unpickler for checkpoint headers.

    Headers hold nothing but dicts, strings and numbers, so any GLOBAL
    opcode is either corruption or a code-execution payload — refuse it.
    """

    def find_class(self, module, name):
        raise CheckpointError(
            f"checkpoint header references {module}.{name}; headers may "
            "only contain primitive values"
        )


def _read_header(handle, path: str) -> Dict[str, Any]:
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise CheckpointError(
            f"{path!r} is not an F-IVM checkpoint (bad magic {magic!r})"
        )
    try:
        header = _HeaderUnpickler(handle).load()
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"corrupt checkpoint header in {path!r}: {exc!r}"
        ) from None
    if not isinstance(header, dict):
        raise CheckpointError(
            f"corrupt checkpoint header in {path!r}: not a mapping"
        )
    version = header.get("file_version")
    if version != FILE_VERSION:
        raise CheckpointError(
            f"unknown checkpoint file version {version!r} in {path!r}; "
            f"this build reads version {FILE_VERSION}"
        )
    compression = header.get("compression")
    if compression not in COMPRESSIONS:
        raise CheckpointError(
            f"unknown compression {compression!r} in {path!r}"
        )
    missing = [
        key
        for key in (
            "format_version", "strategy", "query", "payload",
            "created_at", "state_bytes",
        )
        if key not in header
    ]
    if missing:
        raise CheckpointError(
            f"corrupt checkpoint header in {path!r}: missing {missing}"
        )
    return header


def _info(path: str, header: Mapping[str, Any], file_bytes: int) -> CheckpointInfo:
    return CheckpointInfo(
        path=os.fspath(path),
        file_version=int(header["file_version"]),
        format_version=int(header["format_version"]),
        strategy=header["strategy"],
        query=header["query"],
        payload=header["payload"],
        compression=header["compression"],
        created_at=float(header["created_at"]),
        state_bytes=int(header["state_bytes"]),
        file_bytes=int(file_bytes),
        metadata=dict(header.get("metadata") or {}),
        config=dict(header.get("config") or {}),
    )
