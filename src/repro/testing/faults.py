"""Deterministic fault injection for the sharded engine and checkpoints.

Robustness claims are only testable if failures are reproducible. This
module gives the test suite (and ``benchmarks/bench_recovery.py``) a
process-global :class:`FaultInjector` whose :class:`FaultSpec` entries
fire at exact, counted call sites threaded through the engine:

========================  ====================================================
site                      where it fires
========================  ====================================================
``worker.apply``          in a shard worker, before applying one routed delta
``worker.advance``        in a shard worker, before a decay tick
``worker.reply``          in a shard worker, before a synchronous reply
``coordinator.send``      on the coordinator, before routing one sub-delta
``coordinator.gather``    on the coordinator, before fanning out a gather op
``shm.write``             after delta blocks are staged in shared memory
``checkpoint.write``      in ``write_checkpoint``, before the atomic rename
``checkpoint.finish``     in ``write_checkpoint``, after the atomic rename
========================  ====================================================

Spec kinds:

- ``"kill"`` — die at the site: a worker process ``os._exit``\\ s, a
  coordinator-side site SIGKILLs the target shard's worker, the serial
  backend raises :class:`InjectedWorkerDeath`.
- ``"raise"`` — raise :class:`InjectedFault` (a parked worker failure or
  a coordinator-visible error, depending on the site).
- ``"delay"`` — sleep ``seconds`` at the site (heartbeat-timeout tests).
- ``"torn"`` — returned to the ``shm.write`` site, which corrupts the
  staged bytes after the checksum was computed.
- ``"crash"`` / ``"truncate"`` — returned to the checkpoint sites, which
  orphan the ``*.tmp`` file / truncate the finished file to
  ``bytes_kept`` bytes.

The injector is installed into a module global, so forked shard workers
inherit it; specs carry an ``incarnation`` filter (default 0: only the
*original* workers) so a respawned worker does not immediately re-trigger
the fault that killed its predecessor. Every hook is a no-op when no
injector is installed — the production path pays one global read.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Callable, List, Optional, Tuple

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
    "InjectedWorkerDeath",
    "install_injector",
    "clear_injector",
    "current_injector",
    "fire",
]


class InjectedFault(Exception):
    """An error raised on purpose by a :class:`FaultSpec` of kind 'raise'."""


class InjectedWorkerDeath(InjectedFault):
    """The serial backend's stand-in for a worker process dying."""


class FaultSpec:
    """One deterministic fault: fire ``kind`` at the ``at``-th matching call.

    ``site`` names the hook point (or ``"*"``); ``op`` narrows to one
    worker/gather op; ``shard`` narrows to one shard (``None``: any);
    ``incarnation`` is which worker generation may trigger it (0 = the
    original fork, ``"*"`` = any — beware crash loops). ``once`` specs
    disarm after firing.
    """

    __slots__ = (
        "kind", "site", "op", "shard", "at", "seconds", "bytes_kept",
        "once", "incarnation", "hits", "spent",
    )

    def __init__(
        self, kind, site="*", op="*", shard=None, at=1, seconds=0.05,
        bytes_kept=8, once=True, incarnation=0,
    ):
        self.kind = kind
        self.site = site
        self.op = op
        self.shard = shard
        self.at = int(at)
        self.seconds = float(seconds)
        self.bytes_kept = int(bytes_kept)
        self.once = bool(once)
        self.incarnation = incarnation
        self.hits = 0
        self.spent = False

    def matches(self, site, op, shard, incarnation) -> bool:
        if self.spent:
            return False
        if self.site != "*" and self.site != site:
            return False
        if self.op != "*" and op != "*" and self.op != op:
            return False
        if self.shard is not None and shard is not None and self.shard != shard:
            return False
        if self.incarnation != "*" and incarnation != self.incarnation:
            return False
        return True


class FaultInjector:
    """Holds armed :class:`FaultSpec` entries and fires them at hooks.

    ``fired`` records ``(site, op, shard, kind)`` tuples in the process
    that observed the fault (forked workers record into their own copy,
    so coordinator-side assertions should use recovery statistics).
    """

    def __init__(self, specs: Tuple[FaultSpec, ...] = ()):
        self.specs: List[FaultSpec] = list(specs)
        self.fired: List[Tuple[str, str, Optional[int], str]] = []

    @classmethod
    def seeded_kills(
        cls, seed: int, site: str, max_at: int, shards: int, count: int = 1
    ) -> "FaultInjector":
        """Deterministic kill-at-step-K specs drawn from ``seed``."""
        rng = random.Random(seed)
        specs = [
            FaultSpec(
                "kill",
                site=site,
                shard=rng.randrange(shards),
                at=rng.randint(1, max_at),
            )
            for _ in range(count)
        ]
        return cls(tuple(specs))

    def add(self, spec: FaultSpec) -> None:
        self.specs.append(spec)

    def fire(
        self,
        site: str,
        op: str = "*",
        shard: Optional[int] = None,
        incarnation: int = 0,
        kill: Optional[Callable[[], None]] = None,
    ) -> Optional[FaultSpec]:
        """Run the first matching spec's action; site-specific kinds
        (``torn``/``crash``/``truncate``) are returned to the caller."""
        for spec in self.specs:
            if not spec.matches(site, op, shard, incarnation):
                continue
            spec.hits += 1
            if spec.hits < spec.at:
                continue
            if spec.once:
                spec.spent = True
            else:
                spec.hits = 0
            self.fired.append((site, op, shard, spec.kind))
            if spec.kind == "kill":
                if kill is not None:
                    kill()
                    return spec
                raise InjectedWorkerDeath(
                    f"injected worker death at {site} (op {op!r}, "
                    f"shard {shard})"
                )
            if spec.kind == "raise":
                raise InjectedFault(
                    f"injected fault at {site} (op {op!r}, shard {shard})"
                )
            if spec.kind == "delay":
                time.sleep(spec.seconds)
                return spec
            return spec
        return None


#: The process-global injector; forked workers inherit it.
_INJECTOR: Optional[FaultInjector] = None


def install_injector(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` globally (replacing any previous one)."""
    global _INJECTOR
    _INJECTOR = injector
    return injector


def clear_injector() -> None:
    global _INJECTOR
    _INJECTOR = None


def current_injector() -> Optional[FaultInjector]:
    return _INJECTOR


def fire(
    site: str,
    op: str = "*",
    shard: Optional[int] = None,
    incarnation: int = 0,
    kill: Optional[Callable[[], None]] = None,
) -> Optional[FaultSpec]:
    """Hook entry point: near-free when no injector is installed."""
    injector = _INJECTOR
    if injector is None:
        return None
    return injector.fire(
        site, op=op, shard=shard, incarnation=incarnation, kill=kill
    )


def exit_worker() -> None:
    """Die the way a crashed worker process dies (no cleanup, no excuses)."""
    os._exit(17)


def kill_process(pid: int) -> Callable[[], None]:
    """A ``kill`` callback SIGKILLing ``pid`` (coordinator-side sites)."""

    def _kill() -> None:
        os.kill(pid, signal.SIGKILL)

    return _kill
