"""Deterministic fault injection for robustness tests and benchmarks."""

from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    InjectedWorkerDeath,
    clear_injector,
    current_injector,
    fire,
    install_injector,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedWorkerDeath",
    "clear_injector",
    "current_injector",
    "fire",
    "install_injector",
]
