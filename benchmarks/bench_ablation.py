"""Ablations on F-IVM's design choices (DESIGN.md §3, last row).

1. Variable-order quality: the Figure-2d tree vs a single-path chain —
   the chain widens dependency sets (e.g. Census keyed by the whole path),
   so deltas touch larger views.
2. Workload mix: insert-only vs heavy-delete streams — deletes are just
   negative multiplicities, so cost must stay in the same range.
"""

import pytest

from repro.datasets import retailer_query
from repro.engine import FIVMEngine
from repro.query import VariableOrder
from repro.rings import CovarSpec, Feature

from benchmarks.conftest import apply_all, retailer_batches, total_updates


def spec():
    return CovarSpec(
        (
            Feature.continuous("prize"),
            Feature.continuous("inventoryunits"),
            Feature.continuous("population"),
        ),
        backend="numeric",
    )


def chain_order():
    """A valid but deliberately bad single-path variable order.

    Rooting at ``zip`` and putting ``locn`` deepest gives V@locn the
    dependency set (zip, ksn, dateid) — an intermediate view as wide as
    the fact table — exactly the blow-up good variable orders avoid.
    """
    return VariableOrder.chain(
        ("zip", "ksn", "dateid", "locn"),
        {
            "Inventory": "locn",
            "Weather": "locn",
            "Location": "locn",
            "Item": "ksn",
            "Census": "zip",
        },
    )


@pytest.mark.parametrize("order_kind", ["figure2d", "chain"])
def test_variable_order_quality(benchmark, order_kind, retailer_db, retailer_order):
    order = retailer_order if order_kind == "figure2d" else chain_order()
    query = retailer_query(spec())
    batches = retailer_batches(retailer_db, 4, batch_size=100, seed=21)
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["order"] = order_kind

    def setup():
        engine = FIVMEngine(query, order=order)
        engine.initialize(retailer_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=2)


@pytest.mark.parametrize("insert_ratio", [1.0, 0.5])
def test_workload_mix(benchmark, insert_ratio, retailer_db, retailer_order):
    query = retailer_query(spec())
    batches = retailer_batches(
        retailer_db, 4, batch_size=100, insert_ratio=insert_ratio, seed=22
    )
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["insert_ratio"] = insert_ratio

    def setup():
        engine = FIVMEngine(query, order=retailer_order)
        engine.initialize(retailer_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=2)


def test_chain_order_correct(retailer_db, retailer_order):
    """Both orders must produce identical results (correctness gate)."""
    query = retailer_query(spec())
    batches = retailer_batches(retailer_db, 3, batch_size=50, seed=23)
    results = []
    for order in (retailer_order, chain_order()):
        engine = FIVMEngine(query, order=order)
        engine.initialize(retailer_db)
        apply_all(engine, batches)
        results.append(engine.result())
    assert results[0].close_to(results[1], 1e-7)
