#!/usr/bin/env python3
"""Full experiment harness: regenerates every table/series in EXPERIMENTS.md.

Each experiment prints the paper claim it reproduces and a measured table.
Absolute numbers are CPython on the synthetic datasets; the *shapes*
(who wins, how gaps scale) are the reproduction targets — see DESIGN.md.

Run:  python benchmarks/run_experiments.py [--quick]
"""

from __future__ import annotations

import argparse
import time

from repro.apps import ChowLiuApp, ModelSelectionApp, RegressionApp
from repro.datasets import (
    RETAILER_SCHEMAS,
    FavoritaConfig,
    RetailerConfig,
    UpdateStream,
    continuous_covar_features,
    favorita_query,
    favorita_regression_features,
    favorita_row_factories,
    favorita_variable_order,
    generate_favorita,
    generate_retailer,
    regression_features,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import FIVMEngine, FirstOrderEngine, NaiveEngine, PerAggregateEngine
from repro.ml.discretize import binning_for_attribute
from repro.query import VariableOrder
from repro.rings import CountSpec, CovarSpec, Feature

ENGINES = {
    "fivm": FIVMEngine,
    "first-order": FirstOrderEngine,
    "naive": NaiveEngine,
}


def banner(title: str, claim: str) -> None:
    print()
    print("=" * 76)
    print(title)
    print(f"paper: {claim}")
    print("=" * 76)


def timed_apply(engine, batches) -> float:
    started = time.perf_counter()
    for name, delta in batches:
        engine.apply(name, delta)
    return time.perf_counter() - started


def updates_in(batches) -> int:
    return sum(sum(abs(m) for m in delta.data.values()) for _n, delta in batches)


def make_batches(db, config, targets, count, batch_size, seed=5, insert_ratio=0.7):
    stream = UpdateStream(
        db,
        retailer_row_factories(config, db),
        targets=targets,
        batch_size=batch_size,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return list(stream.batches(count))


# ----------------------------------------------------------------------
# Experiment 1: engine comparison, scaling the fact table
# ----------------------------------------------------------------------


def exp_throughput_scaling(quick: bool) -> None:
    banner(
        "E1  Update throughput vs database scale (count ring, 5-relation join)",
        "several orders of magnitude performance speedup over DBToaster; "
        "gap grows with database size (F-IVM cost tracks the delta, "
        "re-evaluation tracks the database)",
    )
    sizes = [500, 2000] if quick else [500, 2000, 8000]
    header = f"{'inventory_rows':>14} {'target':>10}" + "".join(
        f"{name:>14}" for name in ENGINES
    )
    print(header + "   (updates/second)")
    for rows in sizes:
        config = RetailerConfig(
            locations=8, dates=15, items=60, inventory_rows=rows, seed=101
        )
        db = generate_retailer(config)
        order = retailer_variable_order()
        for target in ("Inventory", "Weather"):
            batches = make_batches(db, config, (target,), 5, 100)
            n_updates = updates_in(batches)
            cells = []
            for engine_cls in ENGINES.values():
                engine = engine_cls(retailer_query(CountSpec()), order=order)
                engine.initialize(db)
                seconds = timed_apply(engine, batches)
                cells.append(f"{n_updates / seconds:>14.0f}")
            print(f"{rows:>14} {target:>10}" + "".join(cells))


# ----------------------------------------------------------------------
# Experiment 2: batch size sweep
# ----------------------------------------------------------------------


def exp_batch_size(quick: bool) -> None:
    banner(
        "E2  Throughput vs batch size (F-IVM, numeric COVAR m=3)",
        "updates are processed in batches (demo: bulks of 10K); throughput "
        "rises with batch size and flattens",
    )
    config = RetailerConfig(locations=8, dates=15, items=60, inventory_rows=1200, seed=101)
    db = generate_retailer(config)
    order = retailer_variable_order()
    spec = CovarSpec(
        (
            Feature.continuous("prize"),
            Feature.continuous("inventoryunits"),
            Feature.continuous("maxtemp"),
        ),
        backend="numeric",
    )
    total = 600 if quick else 2000
    print(f"{'batch_size':>10} {'updates':>8} {'seconds':>9} {'upd/s':>10}")
    for batch_size in (1, 10, 100, total):
        batches = make_batches(
            db, config, ("Inventory",), total // batch_size, batch_size, seed=9
        )
        engine = FIVMEngine(retailer_query(spec), order=order)
        engine.initialize(db)
        seconds = timed_apply(engine, batches)
        n_updates = updates_in(batches)
        print(
            f"{batch_size:>10} {n_updates:>8} {seconds:>9.3f} "
            f"{n_updates / seconds:>10.0f}"
        )


# ----------------------------------------------------------------------
# Experiment 3: compound ring vs per-aggregate maintenance
# ----------------------------------------------------------------------


def exp_aggregate_batch(quick: bool) -> None:
    banner(
        "E3  Batch of aggregates: compound ring vs per-aggregate views",
        "F-IVM maintains batches of aggregates as one compound payload, "
        "sharing computation across the batch; per-aggregate maintenance "
        "scales with the number of aggregates (~m^2)",
    )
    config = RetailerConfig(locations=5, dates=8, items=30, inventory_rows=300, seed=103)
    db = generate_retailer(config)
    order = retailer_variable_order()
    attrs = (
        "prize",
        "inventoryunits",
        "maxtemp",
        "avghhi",
        "population",
        "meanwind",
        "medianage",
        "tot_area_sq_ft",
    )
    ms = (2, 4) if quick else (2, 4, 8)
    print(f"{'m':>3} {'aggregates':>10} {'compound (s)':>13} {'per-agg (s)':>12} {'ratio':>7}")
    for m in ms:
        features = tuple(Feature.continuous(a) for a in attrs[:m])
        batches = make_batches(db, config, ("Inventory",), 3, 50, seed=11)
        compound = FIVMEngine(
            retailer_query(CovarSpec(features, backend="numeric")), order=order
        )
        compound.initialize(db)
        compound_s = timed_apply(compound, batches)
        peragg = PerAggregateEngine(retailer_query(CountSpec()), features, order=order)
        peragg.initialize(db)
        peragg_s = timed_apply(peragg, batches)
        count = 1 + m + m * (m + 1) // 2
        print(
            f"{m:>3} {count:>10} {compound_s:>13.3f} {peragg_s:>12.3f} "
            f"{peragg_s / compound_s:>7.1f}x"
        )


# ----------------------------------------------------------------------
# Experiment 4: full 43-attribute COVAR ("thousands of aggregates")
# ----------------------------------------------------------------------


def exp_full_covar(quick: bool) -> None:
    banner(
        "E4  Full 43-attribute COVAR over the 5-relation Retailer join",
        "average throughput of 10K updates per second for batches of up to "
        "thousands of aggregates over joins of five relations on one thread",
    )
    config = RetailerConfig(
        locations=8, dates=15, items=60, inventory_rows=1200, seed=101
    )
    db = generate_retailer(config)
    features = continuous_covar_features()
    m = len(features)
    aggregates = 1 + m + m * (m + 1) // 2
    engine = FIVMEngine(
        retailer_query(CovarSpec(features, backend="numeric")),
        order=retailer_variable_order(),
    )
    started = time.perf_counter()
    engine.initialize(db)
    init_s = time.perf_counter() - started
    batches = make_batches(db, config, ("Inventory",), 2 if quick else 5, 1000, seed=12)
    seconds = timed_apply(engine, batches)
    n_updates = updates_in(batches)
    print(f"attributes: {m}   compound aggregates: {aggregates}")
    print(f"initialization: {init_s:.2f} s")
    print(
        f"maintenance: {n_updates} updates in {seconds:.2f} s "
        f"-> {n_updates / seconds:.0f} updates/second"
    )


# ----------------------------------------------------------------------
# Experiment 5: the application tabs (Figure 2)
# ----------------------------------------------------------------------


def exp_apps(quick: bool) -> None:
    banner(
        "E5  Application refresh latency per bulk (Figure 2 tabs)",
        "F-IVM processes one bulk of 10K updates before pausing for one "
        "second; each tab refreshes its output per bulk",
    )
    config = RetailerConfig(locations=8, dates=15, items=60, inventory_rows=1200, seed=101)
    db = generate_retailer(config)
    order = retailer_variable_order()
    item = db.relation("Item")
    inventory = db.relation("Inventory")
    mi_feats = (
        Feature.categorical("subcategory"),
        Feature.categorical("category"),
        Feature.categorical("categoryCluster"),
        Feature("prize", "continuous", binning_for_attribute(item, "prize", 6)),
        Feature(
            "inventoryunits",
            "continuous",
            binning_for_attribute(inventory, "inventoryunits", 6),
        ),
        Feature.categorical("rain"),
    )
    reg_feats, label = regression_features()
    bulk_updates = 2000 if quick else 10_000

    apps = {
        "model-selection": ModelSelectionApp(
            db, RETAILER_SCHEMAS, mi_feats, label="inventoryunits", threshold=0.05, order=order
        ),
        "regression": RegressionApp(db, RETAILER_SCHEMAS, reg_feats, label, order=order),
        "chow-liu": ChowLiuApp(db, RETAILER_SCHEMAS, mi_feats, order=order),
    }
    print(
        f"{'tab':>16} {'bulk upd':>9} {'maintain (s)':>13} {'refresh (s)':>12} {'upd/s':>9}"
    )
    for name, app in apps.items():
        stream = UpdateStream(
            app.session.database,
            retailer_row_factories(config, db),
            targets=("Inventory",),
            batch_size=500,
            insert_ratio=0.7,
            seed=31,
        )
        report = app.process_bulk(stream.bulk(bulk_updates))
        started = time.perf_counter()
        if name == "model-selection":
            app.ranking()
        elif name == "regression":
            app.refresh_model()
        else:
            app.tree()
        refresh_s = time.perf_counter() - started
        print(
            f"{name:>16} {report.updates:>9} {report.seconds:>13.2f} "
            f"{refresh_s:>12.3f} {report.throughput:>9.0f}"
        )


# ----------------------------------------------------------------------
# Experiment 6: Favorita
# ----------------------------------------------------------------------


def exp_favorita(quick: bool) -> None:
    banner(
        "E6  Favorita (6-relation join): engine comparison",
        "the demo maintains the same applications over the Favorita database",
    )
    config = FavoritaConfig(stores=8, dates=20, items=50, sales_rows=1000, seed=102)
    db = generate_favorita(config)
    order = favorita_variable_order()
    stream = UpdateStream(
        db,
        favorita_row_factories(config, db),
        targets=("Sales",),
        batch_size=100,
        insert_ratio=0.7,
        seed=6,
    )
    batches = list(stream.batches(5))
    n_updates = updates_in(batches)
    features, _label = favorita_regression_features()
    specs = {"count": CountSpec(), "covar": CovarSpec(features)}
    print(f"{'payload':>8}" + "".join(f"{n:>14}" for n in ENGINES) + "   (updates/second)")
    for spec_name, spec in specs.items():
        cells = []
        for engine_cls in ENGINES.values():
            engine = engine_cls(favorita_query(spec), order=order)
            engine.initialize(db)
            seconds = timed_apply(engine, batches)
            cells.append(f"{n_updates / seconds:>14.0f}")
        print(f"{spec_name:>8}" + "".join(cells))


# ----------------------------------------------------------------------
# Experiment 7: ablations
# ----------------------------------------------------------------------


def exp_ablation(quick: bool) -> None:
    banner(
        "E7  Ablations: variable-order quality and workload mix (F-IVM)",
        "the view tree follows a variable order; good orders keep views "
        "narrow. Deletes are negative multiplicities — same code path",
    )
    config = RetailerConfig(locations=8, dates=15, items=60, inventory_rows=1200, seed=101)
    db = generate_retailer(config)
    spec = CovarSpec(
        (
            Feature.continuous("prize"),
            Feature.continuous("inventoryunits"),
            Feature.continuous("population"),
        ),
        backend="numeric",
    )
    orders = {
        "figure2d-tree": retailer_variable_order(),
        "reversed-chain": VariableOrder.chain(
            ("zip", "ksn", "dateid", "locn"),
            {
                "Inventory": "locn",
                "Weather": "locn",
                "Location": "locn",
                "Item": "ksn",
                "Census": "zip",
            },
        ),
    }
    print(f"{'variable order':>16} {'init (s)':>9} {'maintain upd/s':>15} {'view tuples':>12}")
    batches = make_batches(db, config, ("Inventory",), 4, 100, seed=21)
    n_updates = updates_in(batches)
    for name, order in orders.items():
        engine = FIVMEngine(retailer_query(spec), order=order)
        started = time.perf_counter()
        engine.initialize(db)
        init_s = time.perf_counter() - started
        seconds = timed_apply(engine, batches)
        print(
            f"{name:>16} {init_s:>9.2f} {n_updates / seconds:>15.0f} "
            f"{engine.total_view_tuples():>12}"
        )

    print(f"\n{'insert_ratio':>13} {'upd/s':>10}")
    for ratio in (1.0, 0.5):
        batches = make_batches(
            db, config, ("Inventory",), 4, 100, seed=22, insert_ratio=ratio
        )
        engine = FIVMEngine(retailer_query(spec), order=orders["figure2d-tree"])
        engine.initialize(db)
        seconds = timed_apply(engine, batches)
        print(f"{ratio:>13} {updates_in(batches) / seconds:>10.0f}")


EXPERIMENTS = {
    "E1": exp_throughput_scaling,
    "E2": exp_batch_size,
    "E3": exp_aggregate_batch,
    "E4": exp_full_covar,
    "E5": exp_apps,
    "E6": exp_favorita,
    "E7": exp_ablation,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweeps")
    parser.add_argument(
        "--only", nargs="*", choices=sorted(EXPERIMENTS), help="run a subset"
    )
    args = parser.parse_args()
    selected = args.only or sorted(EXPERIMENTS)
    started = time.perf_counter()
    for key in selected:
        EXPERIMENTS[key](args.quick)
    print(f"\ntotal: {time.perf_counter() - started:.1f} s")


if __name__ == "__main__":
    main()
