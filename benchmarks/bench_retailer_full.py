"""The "thousands of aggregates over joins of five relations" claim.

Full 43-attribute continuous COVAR over the Retailer join: 990 aggregates
(1 + 43 + 43*44/2) maintained as one degree-43 compound payload, batches
of 1000 updates — the configuration behind the paper's "average throughput
of 10K updates per second ... for batches of up to thousands of aggregates
over joins of five relations on one thread". Absolute numbers are CPython,
not the authors' compiled C++; see EXPERIMENTS.md.
"""


from repro.datasets import continuous_covar_features, retailer_query
from repro.engine import FIVMEngine
from repro.rings import CovarSpec

from benchmarks.conftest import apply_all, retailer_batches, total_updates


def test_full_covar_initialization(benchmark, retailer_db, retailer_order):
    query = retailer_query(CovarSpec(continuous_covar_features(), backend="numeric"))

    def initialize():
        engine = FIVMEngine(query, order=retailer_order)
        engine.initialize(retailer_db)
        return engine

    engine = benchmark.pedantic(initialize, rounds=2)
    payload = engine.result().payload(())
    assert payload.c > 0
    assert payload.q.shape == (43, 43)


def test_full_covar_batch_1000(benchmark, retailer_db, retailer_order):
    query = retailer_query(CovarSpec(continuous_covar_features(), backend="numeric"))
    batches = retailer_batches(retailer_db, 2, batch_size=1000, seed=12)
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["aggregates"] = 990

    def setup():
        engine = FIVMEngine(query, order=retailer_order)
        engine.initialize(retailer_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=2)
