"""Perf-regression gate: compare benchmark artifacts to a committed baseline.

``bench_delta_latency.py`` and ``bench_sharded_ingest.py`` write JSON
artifacts with one record per (engine, ingest mode, batch size, ...)
configuration. This script compares the ``latency_us`` of every
configuration present in both an artifact and the baseline
(``BENCH_baseline.json``) and **fails when the median per-update latency
ratio across configurations regresses more than the threshold** (default
25%). The median-of-ratios aggregation keeps one noisy configuration from
failing the gate while still catching a systemic slowdown.

Escape hatches (both documented in ``.github/workflows/ci.yml``):

- apply the ``perf-override`` label to the pull request — the workflow
  exports ``PERF_GATE_OVERRIDE=1`` and the gate reports but never fails;
- ``PERF_GATE_THRESHOLD`` overrides the regression threshold (a float,
  e.g. ``0.40`` for 40%).

The baseline stores *absolute* latencies, so it is only comparable on
similar hardware: median-of-ratios absorbs per-config noise but not a
uniformly slower runner generation. If the gate drifts across the CI
fleet, regenerate the baseline from a recent `bench-smoke-results`
artifact produced by CI itself (or raise ``PERF_GATE_THRESHOLD``).

Regenerate the baseline after an intentional perf change::

    PYTHONPATH=src python benchmarks/bench_delta_latency.py --smoke --json /tmp/a.json
    PYTHONPATH=src python benchmarks/bench_sharded_ingest.py --smoke --json /tmp/b.json
    python benchmarks/check_perf_regression.py --baseline BENCH_baseline.json \
        --update /tmp/a.json /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from typing import Dict, List


def config_key(benchmark: str, record: Dict) -> str:
    """Stable identity of one measured configuration."""
    parts = [benchmark, str(record.get("engine"))]
    for field in (
        "ingest",
        "batch_size",
        "view_index",
        "columnar",
        "fused",
        "shards",
        "transport",
        "supervise",
        "fault",
        "endpoint",
        "readers",
        "stat",
        "window",
        "decay",
    ):
        if field in record and record[field] is not None:
            parts.append(f"{field}={record[field]}")
    return ":".join(parts)


def collect(paths: List[str]) -> Dict[str, float]:
    """``config key -> latency_us`` across one or more artifact files."""
    configs: Dict[str, float] = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            artifact = json.load(handle)
        benchmark = artifact.get("benchmark", os.path.basename(path))
        for record in artifact.get("results", ()):
            latency = record.get("latency_us")
            if latency is None:
                continue
            key = config_key(benchmark, record)
            if key in configs:
                raise SystemExit(f"duplicate configuration {key!r} in {path}")
            configs[key] = float(latency)
    if not configs:
        raise SystemExit("no measurements found in the given artifacts")
    return configs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", help="benchmark JSON artifacts")
    parser.add_argument(
        "--baseline", default="BENCH_baseline.json", help="committed baseline path"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the artifacts instead of checking",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("PERF_GATE_THRESHOLD", "0.25")),
        help="allowed median latency regression (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    current = collect(args.artifacts)

    if args.update:
        baseline = {
            "note": (
                "Median per-update latency baseline for the CI perf gate; "
                "regenerate with check_perf_regression.py --update "
                "(see the module docstring)."
            ),
            "threshold_default": 0.25,
            "configs": {key: current[key] for key in sorted(current)},
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"wrote {len(current)} baseline configurations to {args.baseline}")
        return 0

    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline_configs = json.load(handle)["configs"]

    rows = []
    ratios = []
    for key in sorted(current):
        base = baseline_configs.get(key)
        if base is None or base <= 0:
            rows.append((key, None, current[key], None))
            continue
        ratio = current[key] / base
        ratios.append(ratio)
        rows.append((key, base, current[key], ratio))
    # Baseline keys no measurement covered any more: surface the drift
    # loudly, or renames/removed configs silently shrink gate coverage.
    orphaned = sorted(set(baseline_configs) - set(current))
    if not ratios:
        raise SystemExit(
            "no configuration overlaps the baseline — regenerate it "
            "(check_perf_regression.py --update)"
        )

    median_ratio = statistics.median(ratios)
    worst = max(ratios)
    print("## Perf-regression gate\n")
    print("| configuration | baseline µs | current µs | ratio |")
    print("|---|---:|---:|---:|")
    for key, base, cur, ratio in rows:
        base_s = f"{base:.2f}" if base is not None else "—"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "new"
        print(f"| `{key}` | {base_s} | {cur:.2f} | {ratio_s} |")
    print(
        f"\nmedian latency ratio: **{median_ratio:.2f}x** over {len(ratios)} "
        f"configurations (worst {worst:.2f}x, threshold "
        f"{1 + args.threshold:.2f}x)"
    )
    if orphaned:
        print(
            f"\nWARNING: {len(orphaned)} baseline configuration(s) had no "
            "current measurement (renamed or removed bench configs?) — "
            "regenerate the baseline to restore coverage:"
        )
        for key in orphaned:
            print(f"  - `{key}`")

    if median_ratio > 1 + args.threshold:
        if os.environ.get("PERF_GATE_OVERRIDE"):
            print(
                "\nPERF_GATE_OVERRIDE set ('perf-override' label): regression "
                "reported but not failing the job"
            )
            return 0
        print(
            f"\nFAIL: median per-update latency regressed "
            f"{100 * (median_ratio - 1):.0f}% (> {100 * args.threshold:.0f}%) "
            "vs BENCH_baseline.json. If intentional, regenerate the baseline "
            "or apply the 'perf-override' PR label.",
            file=sys.stderr,
        )
        return 1
    print("\nperf gate passed ✓")
    return 0


if __name__ == "__main__":
    sys.exit(main())
