"""Figure 2 tabs: per-bulk refresh latency of the three applications.

The demo refreshes each application after every bulk of updates; these
benchmarks measure (a) pushing a bulk through the maintained payload and
(b) recomputing the application output (ranking / model / tree) from it.
"""

import pytest

from repro.apps import ChowLiuApp, ModelSelectionApp, RegressionApp
from repro.datasets import (
    RETAILER_SCHEMAS,
    UpdateStream,
    regression_features,
    retailer_row_factories,
)
from repro.ml.discretize import binning_for_attribute
from repro.rings import Feature

from benchmarks.conftest import RETAILER_CONFIG


def mi_features_subset(database):
    item = database.relation("Item")
    inventory = database.relation("Inventory")
    return (
        Feature.categorical("subcategory"),
        Feature.categorical("category"),
        Feature.categorical("categoryCluster"),
        Feature("prize", "continuous", binning_for_attribute(item, "prize", 6)),
        Feature(
            "inventoryunits",
            "continuous",
            binning_for_attribute(inventory, "inventoryunits", 6),
        ),
        Feature.categorical("rain"),
    )


def bulk_slices(database, n_slices, batches_per_slice=2, batch_size=100, seed=31):
    stream = UpdateStream(
        database,
        retailer_row_factories(RETAILER_CONFIG, database),
        targets=("Inventory",),
        batch_size=batch_size,
        insert_ratio=0.7,
        seed=seed,
    )
    return [list(stream.batches(batches_per_slice)) for _ in range(n_slices)]


@pytest.fixture(scope="module")
def model_selection_app(retailer_db, retailer_order):
    return ModelSelectionApp(
        retailer_db,
        RETAILER_SCHEMAS,
        mi_features_subset(retailer_db),
        label="inventoryunits",
        threshold=0.05,
        order=retailer_order,
    )


@pytest.fixture(scope="module")
def regression_app(retailer_db, retailer_order):
    features, label = regression_features()
    return RegressionApp(
        retailer_db, RETAILER_SCHEMAS, features, label, order=retailer_order
    )


@pytest.fixture(scope="module")
def chowliu_app(retailer_db, retailer_order):
    return ChowLiuApp(
        retailer_db,
        RETAILER_SCHEMAS,
        mi_features_subset(retailer_db),
        order=retailer_order,
    )


class TestModelSelectionTab:
    def test_model_selection_refresh(self, benchmark, model_selection_app):
        """MI matrix + ranking from the maintained payload (read-only)."""
        ranking = benchmark(model_selection_app.ranking)
        assert len(ranking.ranked) == 5

    def test_model_selection_bulk(self, benchmark, model_selection_app, retailer_db):
        slices = bulk_slices(retailer_db, 12)
        iterator = iter(slices)

        def process():
            model_selection_app.process_bulk(next(iterator))

        benchmark.pedantic(process, rounds=3)


class TestRegressionTab:
    def test_regression_refresh(self, benchmark, regression_app):
        """Warm-started BGD re-convergence against the current COVAR."""
        model = benchmark(regression_app.refresh_model)
        assert model.training_rmse < 50.0

    def test_regression_bulk(self, benchmark, regression_app, retailer_db):
        slices = bulk_slices(retailer_db, 12, seed=32)
        iterator = iter(slices)

        def process():
            regression_app.process_bulk(next(iterator))

        benchmark.pedantic(process, rounds=3)


class TestChowLiuTab:
    def test_chowliu_refresh(self, benchmark, chowliu_app):
        """MI matrix + maximum spanning tree."""
        tree = benchmark(chowliu_app.tree)
        assert len(tree.edges) == 5
