"""Figure 1: the four payload scenarios on the toy database.

Each benchmark builds the view tree, materializes it, and (for the delta
benchmark) propagates single-tuple updates — the exact computation the
figure walks through. Assertions pin the figure's numbers so the bench
doubles as a regression test.
"""


from repro.data import deletes, inserts
from repro.datasets import (
    toy_count_query,
    toy_covar_categorical_query,
    toy_covar_continuous_query,
    toy_database,
    toy_mi_query,
    toy_variable_order,
)
from repro.engine import FIVMEngine


def initialize(query):
    engine = FIVMEngine(query, order=toy_variable_order())
    engine.initialize(toy_database())
    return engine


def test_fig1_count(benchmark):
    engine = benchmark(initialize, toy_count_query())
    assert engine.result().payload(()) == 3


def test_fig1_covar_continuous(benchmark):
    engine = benchmark(initialize, toy_covar_continuous_query())
    payload = engine.result().payload(())
    assert payload.c == 3.0
    assert payload.s.tolist() == [4.0, 5.0, 6.0]
    assert payload.q[2, 2] == 14.0


def test_fig1_covar_categorical(benchmark):
    engine = benchmark(initialize, toy_covar_categorical_query())
    payload = engine.result().payload(())
    ring = engine.plan.ring
    assert ring.entry(payload, 1, 2).as_dict() == {(1,): 1.0, (2,): 5.0}


def test_fig1_mi(benchmark):
    engine = benchmark(initialize, toy_mi_query())
    payload = engine.result().payload(())
    ring = engine.plan.ring
    assert ring.linear(payload, 0).as_dict() == {(1,): 2, (2,): 1}


def test_fig1_delta_propagation(benchmark):
    """The figure's right-hand side: δR then δS through the view tree."""
    delta_r = inserts(("A", "B"), [("a1", 1)])
    delta_s = deletes(("A", "C", "D"), [("a2", 2, 2)])

    def setup():
        return (initialize(toy_count_query()),), {}

    def propagate(engine):
        engine.apply("R", delta_r)
        engine.apply("S", delta_s)
        return engine

    engine = benchmark.pedantic(propagate, setup=setup, rounds=20)
    assert engine.result().payload(()) == 4
