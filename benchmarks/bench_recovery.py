"""Supervised recovery: MTTR, throughput under faults, supervision cost.

Three claims are measured on a Retailer update stream over a 2-shard
supervised engine, across every topology this host can run (serial,
process/pipe, process/shm):

1. **Supervision overhead** — the same fault-free stream ingested with
   and without ``EngineConfig(supervise=True)``. The replay log costs
   one shallow dict copy per batch, so supervised ingest must stay
   within 5% of unsupervised (gated in full mode; smoke and starved CI
   containers warn — timing noise on tiny streams dwarfs the effect).
2. **Throughput under faults** — a seeded kill (deterministic placement
   from :meth:`FaultInjector.seeded_kills`) lands mid-stream; the run
   must *complete*, end **bit-identical** to the unsharded reference
   (always asserted, every mode), and its end-to-end latency is
   reported for the perf gate under ``fault=kill``.
3. **Recovery latency (MTTR)** — the supervisor's wall-clock for the
   kill's recovery round: detect, respawn from the baseline, replay the
   post-baseline log, resume.

``--json PATH`` writes records in the ``check_perf_regression.py``
format; records carry ``fault`` and ``supervise`` keys so faulted and
clean configurations gate independently.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_recovery.py --smoke
    PYTHONPATH=src python benchmarks/bench_recovery.py  # full scale
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import EngineConfig
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import FIVMEngine, ShardedEngine
from repro.engine.sharded import available_backends
from repro.engine.transport import active_shm_segments, available_transports
from repro.rings import CountSpec
from repro.testing import FaultInjector, clear_injector, install_injector

CONFIG = RetailerConfig(
    locations=32, dates=90, items=900, inventory_rows=40_000, seed=101
)
SMOKE_CONFIG = RetailerConfig(
    locations=8, dates=10, items=40, inventory_rows=600, seed=101
)

SHARDS = 2
#: Allowed fault-free slowdown of supervised over unsupervised ingest.
OVERHEAD_LIMIT = 0.05
#: Seed for deterministic kill placement (same seed -> same fault plan).
KILL_SEED = 17


def make_events(database, config, total_updates, seed=7):
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=max(1, total_updates // 10),
        insert_ratio=0.8,
        seed=seed,
    )
    return list(stream.tuples(total_updates))


def topologies():
    """(backend, transport-label) pairs this host can run."""
    tops = [("serial", "none")]
    if "process" in available_backends():
        tops += [
            ("process", t)
            for t in ("pipe", "shm")
            if t in available_transports()
        ]
    return tops


def run_ingest(query, order, database, events, batch_size, backend,
               transport, supervise, injector=None):
    """One full ingest; returns (result, elapsed seconds, health)."""
    if injector is not None:
        install_injector(injector)
    config = EngineConfig(
        shards=SHARDS,
        backend=backend,
        transport="auto" if transport == "none" else transport,
        supervise=supervise,
    )
    engine = ShardedEngine(query, order=order, config=config)
    try:
        engine.initialize(database)
        started = time.perf_counter()
        engine.apply_stream(iter(events), batch_size=batch_size)
        engine.result()  # the barrier for in-flight worker maintenance
        elapsed = time.perf_counter() - started
        result = engine.result()
        health = engine.health()
    finally:
        engine.close()
        clear_injector()
    return result, elapsed, health


def bench_overhead(query, order, database, events, expected, args, records):
    """Fault-free supervised vs unsupervised; returns worst overhead."""
    print(
        f"## supervision overhead, {len(events)} updates "
        f"(retailer stream, batch size {args.batch_size}, "
        f"{SHARDS} shards)"
    )
    print(
        f"{'transport':>10} {'supervise':>10} {'seconds':>9} "
        f"{'updates/s':>11} {'overhead':>9}"
    )
    worst = None
    for backend, transport in topologies():
        seconds = {}
        for supervise in (False, True):
            result, elapsed, _health = run_ingest(
                query, order, database, events, args.batch_size,
                backend, transport, supervise,
            )
            assert result == expected, (
                f"{transport} supervise={supervise} diverged from the "
                "unsharded engine"
            )
            seconds[supervise] = elapsed
            overhead = (
                f"{100 * (elapsed / seconds[False] - 1):>+7.1f}%"
                if supervise else ""
            )
            print(
                f"{transport:>10} {str(supervise):>10} {elapsed:>9.3f} "
                f"{len(events) / elapsed:>11.0f} {overhead:>9}"
            )
            records.append(
                {
                    "engine": "fivm-sharded",
                    "ingest": "stream",
                    "batch_size": args.batch_size,
                    "shards": SHARDS,
                    "transport": transport,
                    "supervise": supervise,
                    "fault": "none",
                    "updates": len(events),
                    "seconds": round(elapsed, 6),
                    "updates_per_s": round(len(events) / elapsed, 1),
                    "latency_us": round(1e6 * elapsed / len(events), 2),
                }
            )
        ratio = seconds[True] / seconds[False] - 1
        worst = ratio if worst is None else max(worst, ratio)
    print("supervised and unsupervised results identical ✓")
    return worst


def bench_recovery(query, order, database, events, expected, args, records):
    """Seeded kill mid-stream: completion, equivalence, MTTR."""
    print(
        f"\n## recovery under a seeded mid-stream kill "
        f"(seed {KILL_SEED}, site worker.apply)"
    )
    print(
        f"{'transport':>10} {'seconds':>9} {'updates/s':>11} "
        f"{'recoveries':>10} {'MTTR':>9}"
    )
    for backend, transport in topologies():
        shm_before = set(active_shm_segments())
        injector = FaultInjector.seeded_kills(
            KILL_SEED, "worker.apply", max_at=5, shards=SHARDS
        )
        result, elapsed, health = run_ingest(
            query, order, database, events, args.batch_size,
            backend, transport, supervise=True, injector=injector,
        )
        assert result == expected, (
            f"recovered {transport} run diverged from the unsharded "
            "engine — replay is not exact"
        )
        assert health["recoveries"] >= 1, (
            f"the seeded kill never fired on {transport} — "
            "the benchmark measured nothing"
        )
        leaked = set(active_shm_segments()) - shm_before
        assert not leaked, f"killed-worker run leaked shm segments {leaked}"
        mttr_ms = 1e3 * (health["last_recovery_s"] or 0.0)
        print(
            f"{transport:>10} {elapsed:>9.3f} "
            f"{len(events) / elapsed:>11.0f} "
            f"{health['recoveries']:>10} {mttr_ms:>6.1f} ms"
        )
        records.append(
            {
                "engine": "fivm-sharded",
                "ingest": "stream",
                "batch_size": args.batch_size,
                "shards": SHARDS,
                "transport": transport,
                "supervise": True,
                "fault": "kill",
                "updates": len(events),
                "seconds": round(elapsed, 6),
                "updates_per_s": round(len(events) / elapsed, 1),
                "latency_us": round(1e6 * elapsed / len(events), 2),
                "recoveries": health["recoveries"],
                "recovery_ms": round(mttr_ms, 2),
            }
        )
    print("killed-and-recovered results identical to the unsharded engine ✓")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes, CI gate")
    parser.add_argument("--updates", type=int, default=20_000)
    parser.add_argument("--batch-size", type=int, default=500)
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="never fail on the overhead target (always asserted: equivalence)",
    )
    parser.add_argument("--json", metavar="PATH", help="write measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = min(args.updates, 2000)

    config = SMOKE_CONFIG if args.smoke else CONFIG
    database = generate_retailer(config)
    order = retailer_variable_order()
    query = retailer_query(CountSpec())
    events = make_events(database, config, args.updates)
    reference = FIVMEngine(retailer_query(CountSpec()), order=order)
    reference.initialize(database)
    reference.apply_stream(iter(events), batch_size=args.batch_size)
    expected = reference.result()
    print(
        f"# recovery benchmark (retailer, "
        f"{'smoke' if args.smoke else 'full'} mode)\n"
    )
    records = []
    overhead = bench_overhead(
        query, order, database, events, expected, args, records
    )
    bench_recovery(query, order, database, events, expected, args, records)

    if overhead is not None and overhead > OVERHEAD_LIMIT:
        message = (
            f"fault-free supervised ingest is {100 * overhead:.1f}% slower "
            f"than unsupervised (limit {100 * OVERHEAD_LIMIT:.0f}%)"
        )
        if not args.smoke and not args.no_gate:
            print(f"\nFAIL: {message}", file=sys.stderr)
            return 1
        print(f"\nWARNING: {message} — not gating", file=sys.stderr)

    if args.json:
        artifact = {
            "benchmark": "recovery",
            "mode": "smoke" if args.smoke else "full",
            "dataset": "retailer",
            "cpu_count": os.cpu_count() or 1,
            "supervision_overhead": (
                round(overhead, 4) if overhead is not None else None
            ),
            "results": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"\nwrote {len(records)} measurements to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
