"""Serving load generator: concurrent readers against live ingestion.

The serving tier's promise is that reads stay fast, consistent and
boundedly stale while a writer ingests at full speed. This benchmark
measures all three at once:

1. **Read latency under write load** — ``--readers`` concurrent readers
   (default 64, each on its own keep-alive connection) hammer the data
   endpoints while the writer streams updates; per-endpoint p50/p99
   latency and the writer's throughput *with readers attached* go into
   the JSON artifact for the CI perf gate.
2. **Exact read consistency** — sampled reader responses are replayed
   post hoc: a fresh engine ingests the same seeded stream up to each
   sampled snapshot's ``event_offset`` (same batch size, hence the same
   flush boundaries and float association) and the re-derived answer
   must equal the served body **exactly** — not approximately — for the
   snapshot-pure endpoints (``/covar``, ``/topk``, ``/result``).
3. **Staleness** — a monitor polls ``/healthz`` and reports how far the
   served epoch trailed the live stream position.

Modes::

    # in-process: boots engine + server + writer, full control (CI gate)
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --json out.json

    # against a live `repro serve` (the CI serving-smoke job): reads the
    # stream recipe from /stats, bursts readers, verifies post hoc
    PYTHONPATH=src python benchmarks/bench_serving.py \
        --url http://127.0.0.1:8321 --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import ShardedEngine
from repro.serving import IngestThread, ServerThread, ServingApp
from repro.serving.scenario import ServingScenario, build_serving_scenario

#: Endpoints whose bodies are pure functions of the served snapshot and
#: therefore must replay exactly. ``/model``/``/predict`` are excluded:
#: the ridge fit warm-starts from whichever epoch a reader happened to
#: request previously, so its exact floats depend on request order.
VERIFY_ENDPOINT = {"count": "/result", "covar": "/covar", "mi": "/topk"}

#: Fields that never replay (wall-clock) and are stripped before the
#: exact comparison.
VOLATILE_FIELDS = ("published_at",)


# ----------------------------------------------------------------------
# Minimal asyncio HTTP client (keep-alive, one connection per reader)
# ----------------------------------------------------------------------


class ReaderConnection:
    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def get(self, path: str) -> Tuple[int, Dict[str, Any], float]:
        """One GET on the persistent connection -> (status, body, seconds)."""
        started = time.perf_counter()
        request = (
            f"GET {path} HTTP/1.1\r\nHost: {self.host}\r\n"
            "Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(request.encode("latin-1"))
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            header = await self._reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = json.loads(await self._reader.readexactly(length))
        return status, body, time.perf_counter() - started

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


# ----------------------------------------------------------------------
# The reader fleet
# ----------------------------------------------------------------------


async def run_fleet(
    host: str,
    port: int,
    endpoints: List[str],
    verify_endpoint: str,
    readers: int,
    duration: float,
    poll_interval: float = 0.05,
) -> Dict[str, Any]:
    """Drive ``readers`` concurrent keep-alive readers for ``duration``.

    Returns per-endpoint latency samples, one sampled body per observed
    epoch of the verify endpoint, and staleness samples from a
    ``/healthz`` monitor.
    """
    latencies: Dict[str, List[float]] = {path: [] for path in endpoints}
    sampled: Dict[int, Dict[str, Any]] = {}
    staleness: List[int] = []
    requests_by_reader = [0] * readers
    stop = asyncio.Event()

    async def reader_loop(index: int) -> None:
        conn = ReaderConnection(host, port)
        await conn.connect()
        try:
            turn = index  # stagger endpoint choice across the fleet
            while not stop.is_set():
                path = endpoints[turn % len(endpoints)]
                turn += 1
                status, body, seconds = await conn.get(path)
                assert status == 200, f"{path} -> {status}: {body}"
                latencies[path].append(seconds)
                requests_by_reader[index] += 1
                # Exact-match: parameterized variants (e.g. /topk?k=2)
                # truncate the body and would not replay verbatim.
                if path == verify_endpoint:
                    epoch = body["epoch"]
                    if epoch not in sampled:
                        sampled[epoch] = body
        finally:
            await conn.close()

    async def monitor_loop() -> None:
        conn = ReaderConnection(host, port)
        await conn.connect()
        try:
            while not stop.is_set():
                status, body, _seconds = await conn.get("/healthz")
                if status == 200 and "staleness" in body:
                    staleness.append(int(body["staleness"]))
                await asyncio.sleep(poll_interval)
        finally:
            await conn.close()

    tasks = [asyncio.create_task(reader_loop(i)) for i in range(readers)]
    tasks.append(asyncio.create_task(monitor_loop()))
    await asyncio.sleep(duration)
    stop.set()
    results = await asyncio.gather(*tasks, return_exceptions=True)
    failures = [r for r in results if isinstance(r, BaseException)]
    if failures:
        raise failures[0]
    return {
        "latencies": latencies,
        "sampled": sampled,
        "staleness": staleness,
        "requests_by_reader": requests_by_reader,
    }


# ----------------------------------------------------------------------
# Post-hoc batch evaluation (the exactness oracle)
# ----------------------------------------------------------------------


def replay_bodies(
    scenario: ServingScenario,
    offsets: List[int],
    verify_endpoint: str,
    batch_size: int,
    insert_ratio: float,
) -> Dict[int, Dict[str, Any]]:
    """Recompute the verify endpoint's body at each sampled offset.

    One fresh engine replays the seeded stream once; a hook on
    ``publish`` evaluates the endpoint at every published offset we
    sampled. Identical event prefix + identical batch size = identical
    flush boundaries = identical float association, so the bodies must
    match the served ones bit for bit.
    """
    engine = scenario.engine()
    app = ServingApp(
        engine,
        regression_label=scenario.regression_label,
        mi_label=scenario.mi_label,
    )
    wanted = set(offsets)
    bodies: Dict[int, Dict[str, Any]] = {}
    original_publish = engine.publish

    def recording_publish(event_offset=None, **kwargs):
        snapshot = original_publish(event_offset=event_offset, **kwargs)
        if snapshot.event_offset in wanted:
            status, body = app.handle(verify_endpoint)
            assert status == 200, body
            bodies[snapshot.event_offset] = body
        return snapshot

    engine.publish = recording_publish
    engine.publish(event_offset=0)
    max_offset = max(wanted)
    stream = scenario.stream(batch_size=batch_size, insert_ratio=insert_ratio)
    events = (event for _i, event in zip(range(max_offset), stream.tuples(max_offset)))
    engine.apply_stream(events, batch_size=batch_size, publish_batches=True)
    return bodies


def strip_volatile(body: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in body.items() if k not in VOLATILE_FIELDS}


def verify_exact(
    scenario: ServingScenario,
    sampled: Dict[int, Dict[str, Any]],
    verify_endpoint: str,
    batch_size: int,
    insert_ratio: float,
) -> int:
    """Assert every sampled served body equals its batch re-evaluation."""
    by_offset = {body["event_offset"]: body for body in sampled.values()}
    replayed = replay_bodies(
        scenario, sorted(by_offset), verify_endpoint, batch_size, insert_ratio
    )
    for offset in sorted(by_offset):
        served = strip_volatile(by_offset[offset])
        # Round-trip the replayed body through JSON so both sides carry
        # identical types (tuples -> lists); float repr round-trips
        # exactly, so this does not loosen the comparison.
        local = strip_volatile(json.loads(json.dumps(replayed[offset])))
        assert served == local, (
            f"served body at event offset {offset} diverges from batch "
            f"evaluation:\n  served: {served}\n  replay: {local}"
        )
    return len(by_offset)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def endpoint_records(
    latencies: Dict[str, List[float]], readers: int, engine_label: str
) -> List[Dict[str, Any]]:
    records = []
    for path, samples in sorted(latencies.items()):
        if not samples:
            continue
        base = path.split("?")[0].lstrip("/")
        p50 = percentile(samples, 0.50)
        p99 = percentile(samples, 0.99)
        print(
            f"{path:>32} {len(samples):>7} reads   "
            f"p50 {1e6 * p50:>8.0f} µs   p99 {1e6 * p99:>8.0f} µs"
        )
        for stat, value in (("p50", p50), ("p99", p99)):
            records.append(
                {
                    "engine": engine_label,
                    "endpoint": base,
                    "readers": readers,
                    "stat": stat,
                    "reads": len(samples),
                    "latency_us": round(1e6 * value, 2),
                }
            )
    return records


def fleet_endpoints(scenario: ServingScenario) -> List[str]:
    """The endpoint mix readers cycle through for this payload."""
    verify = VERIFY_ENDPOINT[scenario.payload]
    endpoints = [verify, "/healthz"]
    if scenario.payload == "covar":
        features = [
            f.name
            for f in scenario.query.spec.build().features
            if f.name != scenario.regression_label
        ]
        query = "&".join(f"{name}=1" for name in features)
        endpoints += ["/model", f"/predict?{query}"]
    elif scenario.payload == "mi":
        endpoints.append("/topk?k=2")
    return endpoints


# ----------------------------------------------------------------------
# In-process mode: engine + server + writer, all under our control
# ----------------------------------------------------------------------


def run_inprocess(args) -> Dict[str, Any]:
    scenario = build_serving_scenario(
        args.dataset, args.payload, scale=args.scale, seed=args.seed
    )
    engine = scenario.engine(shards=args.shards)
    engine.publish(event_offset=0)
    verify_endpoint = VERIFY_ENDPOINT[scenario.payload]

    # The writer streams until the read window closes, so ingest runs
    # for the whole measurement; `updates` only bounds the stream.
    stop_ingest = threading.Event()

    def bounded(events):
        for event in events:
            if stop_ingest.is_set():
                return
            yield event

    stream = scenario.stream(
        batch_size=args.batch_size, insert_ratio=args.insert_ratio
    )
    ingest = IngestThread(
        engine,
        bounded(stream.tuples(args.updates)),
        batch_size=args.batch_size,
    )
    app = ServingApp(
        engine,
        regression_label=scenario.regression_label,
        mi_label=scenario.mi_label,
        position_source=lambda: ingest.consumed,
        metadata=scenario.provenance(args.batch_size, args.insert_ratio),
    )
    server = ServerThread(app)
    try:
        server.start()
        ingest.start()
        print(
            f"# serving bench: {args.readers} readers vs live ingest "
            f"({args.dataset}/{args.payload}, batch {args.batch_size}, "
            f"{args.duration:.1f}s window)\n"
        )
        fleet = asyncio.run(
            run_fleet(
                server.host,
                server.port,
                fleet_endpoints(scenario),
                verify_endpoint,
                readers=args.readers,
                duration=args.duration,
            )
        )
    finally:
        stop_ingest.set()
        ingest.join(timeout=30)
        server.stop()
        if isinstance(engine, ShardedEngine):
            engine.close()
    if ingest.error is not None:
        raise RuntimeError(f"ingest failed under read load: {ingest.error}")

    total_reads = sum(len(s) for s in fleet["latencies"].values())
    idle = sum(1 for n in fleet["requests_by_reader"] if n == 0)
    assert idle == 0, f"{idle}/{args.readers} readers made no request"
    records = endpoint_records(fleet["latencies"], args.readers, "serving-read")
    ingest_latency_us = (
        1e6 * ingest.seconds / ingest.consumed if ingest.consumed else None
    )
    print(
        f"\nwriter: {ingest.consumed} updates in {ingest.seconds:.2f}s "
        f"({ingest.throughput:.0f} updates/s) with {args.readers} readers "
        f"attached; {total_reads} reads total"
    )
    if ingest_latency_us is not None:
        records.append(
            {
                "engine": "serving-ingest",
                "readers": args.readers,
                "batch_size": args.batch_size,
                "updates": ingest.consumed,
                "updates_per_s": round(ingest.throughput, 1),
                "latency_us": round(ingest_latency_us, 2),
            }
        )
    staleness = fleet["staleness"]
    if staleness:
        print(
            f"staleness (events behind live stream): "
            f"mean {statistics.mean(staleness):.0f}, max {max(staleness)}"
        )

    verified = verify_exact(
        scenario,
        fleet["sampled"],
        verify_endpoint,
        args.batch_size,
        args.insert_ratio,
    )
    print(
        f"exact-read check: {verified} distinct epochs re-evaluated from "
        "scratch, all equal to the served bodies ✓"
    )
    return {
        "benchmark": "serving",
        "mode": "smoke" if args.smoke else "full",
        "dataset": args.dataset,
        "payload": args.payload,
        "readers": args.readers,
        "ingest_updates": ingest.consumed,
        "ingest_updates_per_s": round(ingest.throughput, 1),
        "verified_epochs": verified,
        "staleness_max": max(staleness) if staleness else None,
        "results": records,
    }


# ----------------------------------------------------------------------
# URL mode: burst against a live `repro serve`, verify from /stats recipe
# ----------------------------------------------------------------------


def run_url(args) -> Dict[str, Any]:
    split = args.url.split("://", 1)[-1]
    host, _, port_s = split.partition(":")
    port = int(port_s.rstrip("/") or 80)

    async def fetch_stats():
        conn = ReaderConnection(host, port)
        await conn.connect()
        try:
            status, body, _ = await conn.get("/stats")
            assert status == 200, body
            return body
        finally:
            await conn.close()

    stats = asyncio.run(fetch_stats())
    meta = stats.get("metadata") or {}
    required = ("dataset", "payload", "scale", "seed", "batch_size", "insert_ratio")
    missing = [key for key in required if key not in meta]
    if missing:
        raise SystemExit(
            f"server /stats lacks stream provenance {missing}; "
            "was it started with `repro serve`?"
        )
    scenario = build_serving_scenario(
        meta["dataset"],
        meta["payload"],
        scale=int(meta["scale"]),
        seed=int(meta["seed"]),
    )
    verify_endpoint = VERIFY_ENDPOINT[scenario.payload]
    print(
        f"# serving bench (url mode): {args.readers} readers vs {args.url} "
        f"({meta['dataset']}/{meta['payload']}, {args.duration:.1f}s burst)\n"
    )
    fleet = asyncio.run(
        run_fleet(
            host,
            port,
            fleet_endpoints(scenario),
            verify_endpoint,
            readers=args.readers,
            duration=args.duration,
        )
    )
    total_reads = sum(len(s) for s in fleet["latencies"].values())
    idle = sum(1 for n in fleet["requests_by_reader"] if n == 0)
    assert idle == 0, f"{idle}/{args.readers} readers made no request"
    records = endpoint_records(fleet["latencies"], args.readers, "serving-url-read")
    print(f"\n{total_reads} reads total over the burst")
    verified = verify_exact(
        scenario,
        fleet["sampled"],
        verify_endpoint,
        int(meta["batch_size"]),
        float(meta["insert_ratio"]),
    )
    print(
        f"exact-read check: {verified} distinct epochs re-evaluated from "
        "scratch, all equal to the served bodies ✓"
    )
    staleness = fleet["staleness"]
    return {
        "benchmark": "serving",
        "mode": "url",
        "url": args.url,
        "dataset": meta["dataset"],
        "payload": meta["payload"],
        "readers": args.readers,
        "verified_epochs": verified,
        "staleness_max": max(staleness) if staleness else None,
        "results": records,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short window, CI gate")
    parser.add_argument("--url", help="benchmark a live server instead of booting one")
    parser.add_argument("--dataset", default="toy", choices=("toy", "retailer", "favorita"))
    parser.add_argument("--payload", default="covar", choices=("count", "covar", "mi"))
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--readers", type=int, default=64)
    parser.add_argument("--duration", type=float, default=8.0, help="read window (s)")
    parser.add_argument("--updates", type=int, default=2_000_000)
    parser.add_argument("--batch-size", type=int, default=200)
    parser.add_argument("--insert-ratio", type=float, default=0.7)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--json", metavar="PATH", help="write measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.duration = min(args.duration, 2.0)

    artifact = run_url(args) if args.url else run_inprocess(args)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"\nwrote {len(artifact['results'])} measurements to {args.json}")
    print(f"\nsustained {args.readers} concurrent readers ✓")
    return 0


if __name__ == "__main__":
    sys.exit(main())
