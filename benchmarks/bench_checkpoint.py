"""Checkpoint save/restore latency and snapshot size vs. replay-from-scratch.

The durability claim behind shard-aware checkpointing: restoring a view
snapshot must be much cheaper than replaying the stream, and the snapshot
must be small (the ring views *are* the entire system state). Measured on
a Retailer count-ring stream for the plain F-IVM engine and a sharded
engine:

1. **save** — ``write_checkpoint`` latency and bytes on disk (zlib) vs.
   raw state bytes;
2. **restore** — ``restore_checkpoint`` into a fresh engine (including
   re-partitioning for the sharded engine and index rebuilds);
3. **replay** — ``initialize`` + re-ingesting the same prefix from
   scratch, the recovery path a system without checkpoints pays.

Equivalence is always asserted: the restored engine's result must equal
the source engine's, cross-shard-count restores (sharded snapshot into a
plain engine) included, and both must agree after resuming the remainder
of the stream.

``--json PATH`` writes records in the perf-gate format
(``benchmarks/check_perf_regression.py``); checkpoint configurations are
new keys, so the gate reports them without failing until a baseline
includes them.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py --smoke
    PYTHONPATH=src python benchmarks/bench_checkpoint.py  # full scale
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.checkpoint import read_checkpoint_info, restore_checkpoint, write_checkpoint
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import FIVMEngine, ShardedEngine
from repro.rings import CountSpec

CONFIG = RetailerConfig(
    locations=24, dates=60, items=600, inventory_rows=20_000, seed=77
)
SMOKE_CONFIG = RetailerConfig(
    locations=8, dates=10, items=40, inventory_rows=600, seed=77
)


def make_events(database, config, total_updates):
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=max(1, total_updates // 10),
        insert_ratio=0.7,
        seed=19,
    )
    return list(stream.tuples(total_updates))


def bench_engine(label, factory, database, events, batch_size, path, records):
    """Save/restore/replay one engine configuration; returns its timings."""
    half = len(events) // 2
    engine = factory()
    try:
        engine.initialize(database)
        engine.apply_stream(iter(events[:half]), batch_size=batch_size)
        expected_mid = engine.result().copy()

        started = time.perf_counter()
        write_checkpoint(engine, path)
        save_s = time.perf_counter() - started
        info = read_checkpoint_info(path)

        restored = factory()
        try:
            started = time.perf_counter()
            restore_checkpoint(restored, path)
            restore_s = time.perf_counter() - started
            assert restored.result() == expected_mid, (
                f"{label}: restored result diverged from the source engine"
            )
            # Resume: checkpoint + remainder must equal uninterrupted runs.
            engine.apply_stream(iter(events[half:]), batch_size=batch_size)
            restored.apply_stream(iter(events[half:]), batch_size=batch_size)
            assert restored.result() == engine.result(), (
                f"{label}: resumed result diverged from uninterrupted ingestion"
            )
        finally:
            if isinstance(restored, ShardedEngine):
                restored.close()
    finally:
        if isinstance(engine, ShardedEngine):
            engine.close()

    replay = factory()
    try:
        started = time.perf_counter()
        replay.initialize(database)
        replay.apply_stream(iter(events[:half]), batch_size=batch_size)
        replay_s = time.perf_counter() - started
        assert replay.result() == expected_mid, (
            f"{label}: replay-from-scratch diverged"
        )
    finally:
        if isinstance(replay, ShardedEngine):
            replay.close()

    print(
        f"{label:>16} {1e3 * save_s:>9.1f} {1e3 * restore_s:>12.1f} "
        f"{1e3 * replay_s:>11.1f} {replay_s / restore_s:>8.1f}x "
        f"{info.file_bytes:>10} {info.state_bytes:>10}"
    )
    for op, seconds in (("save", save_s), ("restore", restore_s), ("replay", replay_s)):
        records.append(
            {
                "engine": f"checkpoint-{label}",
                "ingest": op,
                "updates": half,
                "seconds": round(seconds, 6),
                "latency_us": round(1e6 * seconds / max(half, 1), 2),
                "snapshot_bytes": info.file_bytes,
                "snapshot_raw_bytes": info.state_bytes,
            }
        )
    return save_s, restore_s, replay_s


def bench_cross_shard(database, events, batch_size, order, path):
    """4-shard snapshot restored at 2 shards and unsharded: exact both ways."""
    half = len(events) // 2
    query = retailer_query(CountSpec())
    source = ShardedEngine(query, order=order, shards=4, backend="serial")
    try:
        source.initialize(database)
        source.apply_stream(iter(events[:half]), batch_size=batch_size)
        write_checkpoint(source, path)
        expected = source.result().copy()
    finally:
        source.close()
    for label, factory in (
        ("2 shards", lambda: ShardedEngine(query, order=order, shards=2, backend="serial")),
        ("unsharded", lambda: FIVMEngine(query, order=order)),
    ):
        engine = factory()
        try:
            restore_checkpoint(engine, path)
            assert engine.result() == expected, (
                f"4-shard snapshot restored at {label} diverged"
            )
        finally:
            if isinstance(engine, ShardedEngine):
                engine.close()
    print("\n4-shard snapshot restores exactly at 2 shards and unsharded ✓")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes, CI gate")
    parser.add_argument("--updates", type=int, default=20_000)
    parser.add_argument("--batch-size", type=int, default=500)
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process"),
        default="serial",
        help="ShardedEngine backend for the sharded configuration",
    )
    parser.add_argument("--json", metavar="PATH", help="write measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = min(args.updates, 2000)

    config = SMOKE_CONFIG if args.smoke else CONFIG
    database = generate_retailer(config)
    order = retailer_variable_order()
    events = make_events(database, config, args.updates)
    query = retailer_query(CountSpec())

    print(
        f"# checkpoint benchmark (retailer, {'smoke' if args.smoke else 'full'} "
        f"mode, snapshot at {len(events) // 2} of {len(events)} updates)\n"
    )
    print(
        f"{'engine':>16} {'save ms':>9} {'restore ms':>12} {'replay ms':>11} "
        f"{'speedup':>9} {'disk B':>10} {'raw B':>10}"
    )
    records = []
    with tempfile.TemporaryDirectory(prefix="fivm-ckpt-") as tmp:
        bench_engine(
            "fivm",
            lambda: FIVMEngine(query, order=order),
            database,
            events,
            args.batch_size,
            os.path.join(tmp, "fivm.ckpt"),
            records,
        )
        bench_engine(
            "sharded-x2",
            lambda: ShardedEngine(
                query, order=order, shards=2, backend=args.backend
            ),
            database,
            events,
            args.batch_size,
            os.path.join(tmp, "sharded.ckpt"),
            records,
        )
        bench_cross_shard(
            database, events, args.batch_size, order, os.path.join(tmp, "cross.ckpt")
        )

    if args.json:
        artifact = {
            "benchmark": "checkpoint",
            "mode": "smoke" if args.smoke else "full",
            "dataset": "retailer",
            "cpu_count": os.cpu_count() or 1,
            "results": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"\nwrote {len(records)} measurements to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
