"""Columnar delta pipeline: bulk-kernel maintenance and pipe transport.

Measures what the columnar path buys over the per-tuple payload-object
path, and asserts exact equivalence everywhere:

1. **COVAR ingestion sweep** — a Retailer single-tuple stream with
   numeric-COVAR payloads ingested through ``apply_stream`` at batch
   sizes 1/10/100/1000, with the columnar maintenance ladder on and off.
   In full mode the batch-1000 run must be >= 3x faster columnar
   (warning on stderr otherwise; the CI smoke run never gates on
   timing). This is the regime the per-tuple path pays a
   ``NumericCofactor`` allocation per delta row per step.
2. **Shard pipe transport** — serialized bytes and pickle CPU of the
   dict wire form vs the columnar wire form over the same batches (what
   the process backend sends per shard), plus a sharded process-backend
   ingestion with the transport on and off.
3. **Cross-engine equivalence** — naive, first-order, per-aggregate,
   F-IVM (columnar on and off) and sharded serial+process (columnar
   transport on and off) consume the same delete-heavy stream; all final
   results must agree, including after a mid-stream checkpoint saved
   from a columnar engine and restored into a per-tuple and a sharded
   engine. This is asserted and is what CI gates on.

``--json PATH`` writes the measurements as a JSON artifact for the
perf-regression gate and the ``bench-smoke-results`` trajectory.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_columnar.py --smoke
    PYTHONPATH=src python benchmarks/bench_columnar.py  # full scale
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import time

from repro.data import UpdateBatcher
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    continuous_covar_features,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import (
    FIVMEngine,
    FirstOrderEngine,
    NaiveEngine,
    PerAggregateEngine,
    ShardedEngine,
)
from repro.rings import CountSpec, CovarSpec

CONFIG = RetailerConfig(
    locations=32, dates=90, items=900, inventory_rows=40_000, seed=101
)
SMOKE_CONFIG = RetailerConfig(
    locations=4, dates=6, items=20, inventory_rows=200, seed=101
)

BATCH_SIZES = (1, 10, 100, 1000)
SPEEDUP_TARGET = 3.0


def covar_query():
    return retailer_query(
        CovarSpec(continuous_covar_features(limit=3), backend="numeric")
    )


def make_events(database, config, total_updates, seed=7, insert_ratio=0.8):
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=max(1, total_updates // 10),
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return list(stream.tuples(total_updates))


MODES = (
    # (label, engine kwargs): per-tuple baseline, interpreted columnar
    # ladder (fusion off), and the fused per-path kernels (default).
    ("tuple", {"use_columnar": False, "use_fused": False}),
    ("interp", {"use_columnar": True, "use_fused": False}),
    ("fused", {}),
)


def bench_covar_ingest(database, config, order, total_updates, records):
    """COVAR batch-size sweep across maintenance modes; batch-1000 speedup."""
    events = make_events(database, config, total_updates)
    print(
        f"## fivm numeric-COVAR ingestion, {len(events)} updates "
        "(retailer stream)"
    )
    print(
        f"{'batch':>6} {'mode':>9} {'seconds':>9} "
        f"{'updates/s':>11} {'latency/upd':>12}"
    )
    seconds = {}
    results = {}
    for batch_size in BATCH_SIZES:
        for mode, kwargs in MODES:
            engine = FIVMEngine(covar_query(), order=order, **kwargs)
            engine.initialize(database)
            started = time.perf_counter()
            engine.apply_stream(iter(events), batch_size=batch_size)
            elapsed = time.perf_counter() - started
            seconds[batch_size, mode] = elapsed
            results[batch_size, mode] = engine.result()
            if mode != "tuple" and batch_size >= 100:
                assert engine.stats.columnar_batches > 0, (
                    "columnar path not taken at batch size "
                    f"{batch_size} (delta below COLUMNAR_MIN_DELTA?)"
                )
            if mode == "fused" and batch_size >= 100:
                assert engine.stats.fused_batches > 0, (
                    f"fused path not taken at batch size {batch_size}"
                )
            latency_us = 1e6 * elapsed / len(events)
            print(
                f"{batch_size:>6} {mode:>9} "
                f"{elapsed:>9.3f} {len(events) / elapsed:>11.0f} "
                f"{latency_us:>9.1f} µs"
            )
            records.append(
                {
                    "engine": "fivm-covar",
                    "ingest": "stream",
                    "batch_size": batch_size,
                    "columnar": mode != "tuple",
                    "fused": mode == "fused",
                    "updates": len(events),
                    "seconds": round(elapsed, 6),
                    "updates_per_s": round(len(events) / elapsed, 1),
                    "latency_us": round(latency_us, 2),
                }
            )
    reference = results[BATCH_SIZES[0], "tuple"]
    for key, result in results.items():
        assert result.close_to(reference, 1e-8), (
            f"covar results diverged at {key} (columnar vs per-tuple)"
        )
    big = BATCH_SIZES[-1]
    speedup = (
        seconds[big, "tuple"] / seconds[big, "fused"]
        if seconds[big, "fused"]
        else float("inf")
    )
    fused_vs_interp = (
        seconds[big, "interp"] / seconds[big, "fused"]
        if seconds[big, "fused"]
        else float("inf")
    )
    print(f"batch-{big} fused speedup over per-tuple: {speedup:.1f}x")
    print(f"batch-{big} fused speedup over interpreted: {fused_vs_interp:.2f}x")
    return speedup


def bench_pipe_transport(database, config, order, total_updates, records):
    """Wire cost of dict vs columnar delta forms + sharded ingestion."""
    events = make_events(database, config, total_updates, seed=13)
    schemas = {"Inventory": database.relation("Inventory").schema}
    batcher = UpdateBatcher(schemas, batch_size=1000, flush_policy="manual")
    batches = []
    for name, row, multiplicity in events:
        batcher.add(name, row, multiplicity)
        if batcher.pending_updates >= 1000:
            batches.extend(batcher.flush())
    batches.extend(batcher.flush())
    print(f"\n## shard pipe transport, {len(batches)} batches of ~1000 updates")
    measures = {}
    for label, encode in (
        ("dict", lambda delta: delta.data),
        ("columnar", lambda delta: delta.columnar().transport()),
    ):
        payloads = [encode(delta) for _name, delta in batches]
        started = time.perf_counter()
        blobs = [pickle.dumps(payload) for payload in payloads]
        elapsed = time.perf_counter() - started
        size = sum(len(blob) for blob in blobs)
        measures[label] = (elapsed, size)
        per_batch_us = 1e6 * elapsed / max(len(batches), 1)
        print(
            f"{label:>9}: {size:>9} bytes, {elapsed * 1e3:>7.2f} ms pickle "
            f"({per_batch_us:.0f} µs/batch)"
        )
        records.append(
            {
                "engine": "pipe-serialize",
                "ingest": "transport",
                "columnar": label == "columnar",
                "updates": len(events),
                "seconds": round(elapsed, 6),
                "bytes": size,
                "latency_us": round(per_batch_us, 2),
            }
        )
    dict_s, dict_bytes = measures["dict"]
    col_s, col_bytes = measures["columnar"]
    print(
        f"columnar wire: {100 * (1 - col_bytes / dict_bytes):.0f}% fewer "
        f"bytes, {dict_s / col_s:.1f}x faster serialize"
    )
    # The transport must not change results on the live process backend.
    results = []
    for transport in (True, False):
        engine = ShardedEngine(
            covar_query(),
            order=order,
            shards=2,
            backend="process",
            columnar_transport=transport,
        )
        try:
            engine.initialize(database)
            engine.apply_stream(iter(events), batch_size=1000)
            results.append(engine.result())
        finally:
            engine.close()
    assert results[0].close_to(results[1], 1e-8), (
        "sharded results diverged across columnar transport on/off"
    )
    print("process-backend results identical with transport on and off ✓")


def bench_equivalence(database, config, order, total_updates, batch_size, records):
    """Every engine agrees on a delete-heavy stream, incl. checkpoints."""
    # insert_ratio 0.45: deletes dominate once the stream warms up, so
    # ±-cancellation and zero-pruning run constantly on every path.
    events = make_events(
        database, config, total_updates, seed=11, insert_ratio=0.45
    )
    count_query = retailer_query(CountSpec())
    features = continuous_covar_features(limit=2)
    engines = [
        ("naive", lambda: NaiveEngine(count_query, order=order)),
        ("first-order", lambda: FirstOrderEngine(count_query, order=order)),
        ("fivm-columnar", lambda: FIVMEngine(count_query, order=order, use_columnar=True)),
        ("fivm-pertuple", lambda: FIVMEngine(count_query, order=order, use_columnar=False)),
        (
            "per-aggregate",
            lambda: PerAggregateEngine(
                retailer_query(CovarSpec(features, backend="numeric")),
                features,
                order=order,
            ),
        ),
        (
            "sharded-serial",
            lambda: ShardedEngine(
                count_query, order=order, shards=2, backend="serial",
                use_columnar=True,
            ),
        ),
        (
            "sharded-process",
            lambda: ShardedEngine(
                count_query, order=order, shards=2, backend="process",
                columnar_transport=True, use_columnar=True,
            ),
        ),
    ]
    print(f"\n## cross-engine equivalence, {len(events)} updates (delete-heavy)")
    results = {}
    for label, factory in engines:
        engine = factory()
        try:
            engine.initialize(database)
            started = time.perf_counter()
            engine.apply_stream(iter(events), batch_size=batch_size)
            results[label] = engine.result()
            elapsed = time.perf_counter() - started
        finally:
            if isinstance(engine, ShardedEngine):
                engine.close()
        print(
            f"{label:>16}: {len(events) / elapsed:>9.0f} updates/s "
            f"({len(results[label])} result keys)"
        )
        columnar = None
        if label.startswith("fivm"):
            columnar = label == "fivm-columnar"
        records.append(
            {
                "engine": label,
                "ingest": "stream",
                "batch_size": batch_size,
                "columnar": columnar,
                "updates": len(events),
                "seconds": round(elapsed, 6),
                "updates_per_s": round(len(events) / elapsed, 1),
                "latency_us": round(1e6 * elapsed / len(events), 2),
            }
        )
    reference = results["naive"]
    for label, result in results.items():
        assert result.close_to(reference, 1e-6), (
            f"{label}: final result diverged from naive"
        )
    print("all engines agree with columnar on and off ✓")

    # Checkpoint round-trip: snapshot a columnar COVAR engine mid-stream,
    # restore into a per-tuple engine and a differently-sharded engine,
    # resume, and compare against uninterrupted columnar ingestion.
    half = len(events) // 2
    source = FIVMEngine(covar_query(), order=order, use_columnar=True)
    source.initialize(database)
    source.apply_stream(iter(events[:half]), batch_size=batch_size)
    snapshot = pickle.loads(pickle.dumps(source.export_state()))
    source.apply_stream(iter(events[half:]), batch_size=batch_size)
    uninterrupted = source.result()
    restored = [
        ("fivm-pertuple", FIVMEngine(covar_query(), order=order, use_columnar=False)),
        (
            "sharded-process",
            ShardedEngine(
                covar_query(), order=order, shards=2, backend="process",
                columnar_transport=True,
            ),
        ),
    ]
    for label, engine in restored:
        try:
            engine.import_state(pickle.loads(pickle.dumps(snapshot)))
            engine.apply_stream(iter(events[half:]), batch_size=batch_size)
            assert engine.result().close_to(uninterrupted, 1e-8), (
                f"{label}: checkpoint round-trip diverged from "
                "uninterrupted columnar ingestion"
            )
        finally:
            if isinstance(engine, ShardedEngine):
                engine.close()
    print("columnar checkpoints restore into per-tuple and sharded engines ✓")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes, CI gate")
    parser.add_argument("--updates", type=int, default=6000)
    parser.add_argument("--transport-updates", type=int, default=4000)
    parser.add_argument("--equivalence-updates", type=int, default=400)
    parser.add_argument("--equivalence-batch", type=int, default=64)
    parser.add_argument("--json", metavar="PATH", help="write measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = min(args.updates, 400)
        args.transport_updates = min(args.transport_updates, 400)
        args.equivalence_updates = min(args.equivalence_updates, 160)

    config = SMOKE_CONFIG if args.smoke else CONFIG
    database = generate_retailer(config)
    order = retailer_variable_order()
    print(
        f"# columnar-pipeline benchmark (retailer, "
        f"{'smoke' if args.smoke else 'full'} mode)\n"
    )
    records = []
    speedup = bench_covar_ingest(database, config, order, args.updates, records)
    bench_pipe_transport(
        database, config, order, args.transport_updates, records
    )
    bench_equivalence(
        database,
        config,
        order,
        args.equivalence_updates,
        args.equivalence_batch,
        records,
    )
    if not args.smoke and speedup < SPEEDUP_TARGET:
        print(
            f"\nWARNING: batch-1000 fused speedup {speedup:.1f}x below "
            f"the {SPEEDUP_TARGET:.0f}x target",
            file=sys.stderr,
        )
    if args.json:
        artifact = {
            "benchmark": "columnar",
            "mode": "smoke" if args.smoke else "full",
            "dataset": "retailer",
            "batch1000_fused_speedup": round(speedup, 2),
            "results": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"\nwrote {len(records)} measurements to {args.json}")
    print("\ncolumnar and per-tuple paths agree ✓")
    return 0


if __name__ == "__main__":
    sys.exit(main())
