"""Per-update latency with persistent view indexes on vs. off.

The view-index subsystem converts F-IVM's per-update cost from
O(|sibling view|) scans to O(|delta| x matches) probes. This benchmark
measures what that buys at the latency-critical end of the spectrum —
small batches — where PR 1's batcher cannot amortize the scans:

1. **Delta latency** — a Retailer single-tuple stream ingested through
   ``apply_stream`` at batch sizes 1/10/100/1000, F-IVM with indexes
   enabled and disabled. Reports per-update latency and updates/s; in
   full mode the batch-size-1 run with indexes must be >= 5x faster than
   the scan path (warning on stderr otherwise; the CI smoke run never
   gates on timing).
2. **Cross-engine equivalence** — naive, first-order, per-aggregate and
   F-IVM (indexes on *and* off) consume the same stream; all final
   results must agree. This is asserted and is what CI gates on.

``--json PATH`` writes the measurements as a small JSON artifact
(updates/s per engine / ingest mode) that CI uploads to track the perf
trajectory across PRs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_delta_latency.py --smoke
    PYTHONPATH=src python benchmarks/bench_delta_latency.py  # full scale
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    continuous_covar_features,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import (
    FIVMEngine,
    FirstOrderEngine,
    NaiveEngine,
    PerAggregateEngine,
)
from repro.rings import CountSpec, CovarSpec

# Sibling views on the Inventory path (V_Item, V_Weather, V@zip) must be
# large enough that per-update scans dominate fixed Python overhead —
# that is the regime the paper's O(delta) claim is about.
CONFIG = RetailerConfig(
    locations=32, dates=90, items=900, inventory_rows=40_000, seed=101
)
SMOKE_CONFIG = RetailerConfig(
    locations=4, dates=6, items=20, inventory_rows=200, seed=101
)

BATCH_SIZES = (1, 10, 100, 1000)


def make_events(database, config, total_updates, seed=7):
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=max(1, total_updates // 10),
        insert_ratio=0.8,
        seed=seed,
    )
    return list(stream.tuples(total_updates))


def bench_delta_latency(database, config, order, total_updates, records):
    """Batch-size sweep, indexes on vs off; returns the batch-1 speedup."""
    events = make_events(database, config, total_updates)
    query = retailer_query(CountSpec())
    print(f"## fivm per-update latency, {len(events)} updates (retailer stream)")
    print(
        f"{'batch':>6} {'view-index':>11} {'seconds':>9} "
        f"{'updates/s':>11} {'latency/upd':>12}"
    )
    seconds = {}
    results = {}
    for batch_size in BATCH_SIZES:
        for view_index in (False, True):
            engine = FIVMEngine(query, order=order, use_view_index=view_index)
            engine.initialize(database)
            started = time.perf_counter()
            engine.apply_stream(iter(events), batch_size=batch_size)
            elapsed = time.perf_counter() - started
            seconds[batch_size, view_index] = elapsed
            results[batch_size, view_index] = engine.result()
            latency_us = 1e6 * elapsed / len(events)
            print(
                f"{batch_size:>6} {'on' if view_index else 'off':>11} "
                f"{elapsed:>9.3f} {len(events) / elapsed:>11.0f} "
                f"{latency_us:>9.1f} µs"
            )
            records.append(
                {
                    "engine": "fivm",
                    "ingest": "stream",
                    "batch_size": batch_size,
                    "view_index": view_index,
                    "updates": len(events),
                    "seconds": round(elapsed, 6),
                    "updates_per_s": round(len(events) / elapsed, 1),
                    "latency_us": round(latency_us, 2),
                }
            )
    reference = results[BATCH_SIZES[0], False]
    assert all(result == reference for result in results.values()), (
        "fivm results diverged across batch sizes / index modes"
    )
    speedup = seconds[1, False] / seconds[1, True] if seconds[1, True] else float("inf")
    print(f"batch-size-1 view-index speedup: {speedup:.1f}x")
    return speedup


def bench_equivalence(database, config, order, total_updates, batch_size, records):
    """All four engines agree, with F-IVM's indexes both on and off."""
    events = make_events(database, config, total_updates, seed=11)
    count_query = retailer_query(CountSpec())
    features = continuous_covar_features(limit=2)
    covar_query = retailer_query(CovarSpec(features, backend="numeric"))
    engines = [
        ("naive", lambda: NaiveEngine(count_query, order=order)),
        ("first-order", lambda: FirstOrderEngine(count_query, order=order)),
        ("fivm", lambda: FIVMEngine(count_query, order=order)),
        (
            "fivm-noindex",
            lambda: FIVMEngine(count_query, order=order, use_view_index=False),
        ),
        (
            "per-aggregate",
            lambda: PerAggregateEngine(covar_query, features, order=order),
        ),
    ]
    print(f"\n## cross-engine equivalence, {len(events)} updates")
    results = {}
    instances = {}
    for label, factory in engines:
        engine = factory()
        engine.initialize(database)
        started = time.perf_counter()
        engine.apply_stream(iter(events), batch_size=batch_size)
        elapsed = time.perf_counter() - started
        instances[label] = engine
        results[label] = engine.result()
        print(
            f"{label:>14}: {len(events) / elapsed:>9.0f} updates/s "
            f"({len(results[label])} result keys)"
        )
        # view_index only means something for F-IVM rows; null elsewhere
        # so artifact consumers don't lump scan-based engines in with it.
        view_index = None
        if label.startswith("fivm"):
            view_index = label != "fivm-noindex"
        records.append(
            {
                "engine": label,
                "ingest": "stream",
                "batch_size": batch_size,
                "view_index": view_index,
                "updates": len(events),
                "seconds": round(elapsed, 6),
                "updates_per_s": round(len(events) / elapsed, 1),
                "latency_us": round(1e6 * elapsed / len(events), 2),
            }
        )
    # per-aggregate's result() is its count sub-view, so every engine's
    # final result is comparable against the count oracle.
    reference = results["naive"]
    for label, result in results.items():
        assert result.close_to(reference, 1e-6), (
            f"{label}: final result diverged from naive"
        )
    # Spot-check the per-aggregate COVAR assembly is finite and symmetric
    # (its sub-engines run the indexed maintenance path too).
    count, sums, quad = instances["per-aggregate"].covar_matrix()
    assert np.isfinite(count) and np.isfinite(sums).all()
    assert np.allclose(quad, quad.T), "per-aggregate COVAR not symmetric"
    print("all engines agree with indexes on and off ✓")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes, CI gate")
    parser.add_argument("--updates", type=int, default=2000)
    parser.add_argument("--equivalence-updates", type=int, default=400)
    parser.add_argument("--equivalence-batch", type=int, default=64)
    parser.add_argument("--json", metavar="PATH", help="write measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = min(args.updates, 200)
        args.equivalence_updates = min(args.equivalence_updates, 120)

    config = SMOKE_CONFIG if args.smoke else CONFIG
    database = generate_retailer(config)
    order = retailer_variable_order()
    print(
        f"# delta-latency benchmark (retailer, "
        f"{'smoke' if args.smoke else 'full'} mode)\n"
    )
    records = []
    speedup = bench_delta_latency(database, config, order, args.updates, records)
    bench_equivalence(
        database,
        config,
        order,
        args.equivalence_updates,
        args.equivalence_batch,
        records,
    )
    if not args.smoke and speedup < 5.0:
        print(
            f"\nWARNING: batch-1 view-index speedup {speedup:.1f}x "
            "below the 5x target",
            file=sys.stderr,
        )
    if args.json:
        artifact = {
            "benchmark": "delta_latency",
            "mode": "smoke" if args.smoke else "full",
            "dataset": "retailer",
            "batch1_view_index_speedup": round(speedup, 2),
            "results": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"\nwrote {len(records)} measurements to {args.json}")
    print("\nview-index and scan paths agree ✓")
    return 0


if __name__ == "__main__":
    sys.exit(main())
