"""Section 1's headline claim: F-IVM vs first-order IVM vs re-evaluation.

Update throughput on the five-relation Retailer join, for the count ring
and the COVAR ring. The paper reports "several orders of magnitude
performance speedup over DBToaster"; the expected *shape* here is
fivm >> first-order >> naive, with result equality across engines
(asserted). Throughput (updates/second) = extra_info["updates"] / mean.
"""

import pytest

from repro.datasets import regression_features, retailer_query
from repro.engine import FIVMEngine, FirstOrderEngine, NaiveEngine
from repro.rings import CountSpec, CovarSpec, Feature

from benchmarks.conftest import apply_all, retailer_batches, total_updates

ENGINES = {
    "fivm": FIVMEngine,
    "first-order": FirstOrderEngine,
    "naive": NaiveEngine,
}

BATCHES = 6
BATCH_SIZE = 100


def covar_spec():
    features, _ = regression_features()
    return CovarSpec(features)


def continuous_covar_spec():
    return CovarSpec(
        (
            Feature.continuous("prize"),
            Feature.continuous("inventoryunits"),
            Feature.continuous("maxtemp"),
            Feature.continuous("avghhi"),
        ),
        backend="numeric",
    )


@pytest.mark.parametrize("strategy", list(ENGINES))
def test_count_maintenance(benchmark, strategy, retailer_db, retailer_order):
    query = retailer_query(CountSpec())
    batches = retailer_batches(retailer_db, BATCHES, BATCH_SIZE)
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["strategy"] = strategy

    def setup():
        engine = ENGINES[strategy](query, order=retailer_order)
        engine.initialize(retailer_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=3)


@pytest.mark.parametrize("strategy", list(ENGINES))
def test_covar_continuous_maintenance(benchmark, strategy, retailer_db, retailer_order):
    query = retailer_query(continuous_covar_spec())
    batches = retailer_batches(retailer_db, BATCHES, BATCH_SIZE)
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["strategy"] = strategy

    def setup():
        engine = ENGINES[strategy](query, order=retailer_order)
        engine.initialize(retailer_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=3)


@pytest.mark.parametrize("strategy", ["fivm", "first-order"])
def test_covar_categorical_maintenance(benchmark, strategy, retailer_db, retailer_order):
    """The demo's mixed categorical/continuous COVAR (Figure 2b feature set)."""
    query = retailer_query(covar_spec())
    batches = retailer_batches(retailer_db, 4, BATCH_SIZE)
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["strategy"] = strategy

    def setup():
        engine = ENGINES[strategy](query, order=retailer_order)
        engine.initialize(retailer_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=2)


@pytest.mark.parametrize("strategy", list(ENGINES))
def test_count_maintenance_weather_updates(
    benchmark, strategy, retailer_db, retailer_order
):
    """Updates to Weather, which joins against the materialized Inventory
    subtree. First-order IVM re-aggregates the fact table on every batch;
    F-IVM probes its materialized V@ksn — this is where the paper's
    orders-of-magnitude gap comes from."""
    query = retailer_query(CountSpec())
    batches = weather_batches(retailer_db, BATCHES, BATCH_SIZE)
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["strategy"] = strategy

    def setup():
        engine = ENGINES[strategy](query, order=retailer_order)
        engine.initialize(retailer_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=3)


def weather_batches(database, count, batch_size):
    from benchmarks.conftest import RETAILER_CONFIG
    from repro.datasets import UpdateStream, retailer_row_factories

    stream = UpdateStream(
        database,
        retailer_row_factories(RETAILER_CONFIG, database),
        targets=("Weather",),
        batch_size=batch_size,
        insert_ratio=0.7,
        seed=8,
    )
    return list(stream.batches(count))


def test_engines_agree_on_final_result(retailer_db, retailer_order):
    """Correctness gate for the whole comparison (not a timing benchmark)."""
    query = retailer_query(CountSpec())
    batches = retailer_batches(retailer_db, BATCHES, BATCH_SIZE)
    results = []
    for strategy, engine_cls in ENGINES.items():
        engine = engine_cls(query, order=retailer_order)
        engine.initialize(retailer_db)
        apply_all(engine, batches)
        results.append((strategy, engine.result()))
    reference = results[0][1]
    for strategy, result in results[1:]:
        assert reference == result, strategy
