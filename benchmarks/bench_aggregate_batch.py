"""Batches of aggregates: compound ring vs per-aggregate maintenance.

F-IVM maintains all 1 + m + m(m+1)/2 COVAR aggregates as ONE compound
payload; a DBToaster-style system maintains each aggregate as its own
view. Sweeping the feature count m isolates the sharing benefit: the
per-aggregate cost grows ~quadratically in m while the compound ring pays
one traversal with (cheap numpy) payload ops.
"""

import pytest

from repro.datasets import RetailerConfig, generate_retailer, retailer_query, retailer_variable_order
from repro.engine import FIVMEngine, PerAggregateEngine
from repro.rings import CountSpec, CovarSpec, Feature

from benchmarks.conftest import apply_all, total_updates
from repro.datasets import UpdateStream, retailer_row_factories

# A small database keeps the m=8 per-aggregate run (45 engines) tractable.
TINY_CONFIG = RetailerConfig(locations=5, dates=8, items=30, inventory_rows=300, seed=103)

ATTRS = (
    "prize",
    "inventoryunits",
    "maxtemp",
    "avghhi",
    "population",
    "meanwind",
    "medianage",
    "tot_area_sq_ft",
)


def features_of(m):
    return tuple(Feature.continuous(attr) for attr in ATTRS[:m])


@pytest.fixture(scope="module")
def tiny_db():
    return generate_retailer(TINY_CONFIG)


def tiny_batches(database, count=3, batch_size=50):
    stream = UpdateStream(
        database,
        retailer_row_factories(TINY_CONFIG, database),
        targets=("Inventory",),
        batch_size=batch_size,
        insert_ratio=0.7,
        seed=11,
    )
    return list(stream.batches(count))


@pytest.mark.parametrize("m", [2, 4, 8])
def test_compound_ring(benchmark, m, tiny_db):
    query = retailer_query(CovarSpec(features_of(m), backend="numeric"))
    order = retailer_variable_order()
    batches = tiny_batches(tiny_db)
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["aggregates"] = 1 + m + m * (m + 1) // 2

    def setup():
        engine = FIVMEngine(query, order=order)
        engine.initialize(tiny_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=2)


@pytest.mark.parametrize("m", [2, 4, 8])
def test_per_aggregate(benchmark, m, tiny_db):
    query = retailer_query(CountSpec())
    order = retailer_variable_order()
    batches = tiny_batches(tiny_db)
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["aggregates"] = 1 + m + m * (m + 1) // 2

    def setup():
        engine = PerAggregateEngine(query, features_of(m), order=order)
        engine.initialize(tiny_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=1)
