"""Figure 2d: view-tree construction and M3 code generation."""

from repro.datasets import regression_features, retailer_query
from repro.query import plan_variable_order
from repro.rings import CovarSpec
from repro.viewtree import build_view_tree, render_tree_dot, render_tree_m3


def covar_query():
    features, _ = regression_features()
    return retailer_query(CovarSpec(features))


def test_plan_variable_order(benchmark):
    query = covar_query()
    order = benchmark(plan_variable_order, query)
    assert order.roots[0].variable == "locn"


def test_build_view_tree(benchmark, retailer_order):
    query = covar_query()
    tree = benchmark(build_view_tree, query, retailer_order)
    assert "V@ksn" in tree.views


def test_render_m3(benchmark, retailer_order):
    tree = build_view_tree(covar_query(), retailer_order)
    text = benchmark(render_tree_m3, tree)
    assert "DECLARE MAP" in text


def test_render_dot(benchmark, retailer_order):
    tree = build_view_tree(covar_query(), retailer_order)
    dot = benchmark(render_tree_dot, tree)
    assert dot.startswith("digraph")
