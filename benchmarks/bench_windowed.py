"""Windowed ingest latency vs full-history, and incremental-checkpoint costs.

Two claims behind time-aware maintenance:

1. **Windows are (almost) free.** A sliding window compiles to delayed
   retractions through the same delta path as inserts
   (:class:`~repro.data.windows.WindowedStream`), so windowed ingest pays
   only for the extra retraction deltas — no new maintenance machinery.
   Measured as per-*source*-update latency for full-history vs tumbling
   vs sliding ingest on the count ring, plus the numeric covar ring with
   and without exponential decay (:class:`~repro.rings.decay.DecayRing`).
   Windowed equivalence is asserted against a fresh batch evaluation
   over exactly the live window.

2. **Incremental checkpoints keep long-running windowed pipelines cheap
   to persist.** A chain of one full snapshot plus three increments
   (``write_checkpoint(..., base=prev)``) must cost measurably fewer
   bytes than four full snapshots, and restoring the chain head must
   cost about the same as restoring a single full snapshot — both are
   asserted at smoke scale, and both land in the perf-gate artifact.

``--json PATH`` writes records in the perf-gate format
(``benchmarks/check_perf_regression.py``); windowed configurations carry
a ``window`` config key.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_windowed.py --smoke
    PYTHONPATH=src python benchmarks/bench_windowed.py  # full scale
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.checkpoint import restore_checkpoint, write_checkpoint
from repro.config import EngineConfig
from repro.data import WindowSpec, WindowedStream, live_window_events
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    continuous_covar_features,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import FIVMEngine
from repro.rings import CountSpec, CovarSpec

CONFIG = RetailerConfig(
    locations=24, dates=60, items=600, inventory_rows=20_000, seed=77
)
SMOKE_CONFIG = RetailerConfig(
    locations=8, dates=10, items=40, inventory_rows=600, seed=77
)


def make_events(database, config, total_updates):
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=max(1, total_updates // 10),
        insert_ratio=0.7,
        seed=19,
    )
    return list(stream.tuples(total_updates))


def _run(engine_config, query, database, events, batch_size, window=None):
    """Ingest ``events`` (optionally windowed) once; returns (engine, s)."""
    engine = FIVMEngine(
        query, order=retailer_variable_order(), config=engine_config
    )
    engine.initialize(database)
    stream = WindowedStream(window, iter(events)) if window else iter(events)
    started = time.perf_counter()
    engine.apply_stream(stream, batch_size=batch_size)
    seconds = time.perf_counter() - started
    return engine, seconds


def bench_ingest(database, events, batch_size, records) -> None:
    """Per-source-update ingest latency: full-history vs windowed vs decayed."""
    count_query = retailer_query(CountSpec())
    covar_query = retailer_query(
        CovarSpec(continuous_covar_features(limit=3), backend="numeric")
    )
    size = max(len(events) // 4, 4)
    sliding = WindowSpec(size, max(size // 2, 1))
    tumbling = WindowSpec(size, size)
    runs = [
        ("count", count_query, EngineConfig(), None),
        ("count", count_query, EngineConfig(), tumbling),
        ("count", count_query, EngineConfig(), sliding),
        ("covar", covar_query, EngineConfig(), None),
        ("covar", covar_query, EngineConfig(decay="0.995/100"), None),
    ]
    print(
        f"{'ring':>6} {'window':>16} {'decay':>10} {'seconds':>9} "
        f"{'us/update':>10}"
    )
    for ring, query, engine_config, window in runs:
        engine, seconds = _run(
            engine_config, query, database, events, batch_size, window=window
        )
        if window is not None:
            _assert_window_equivalence(
                engine, query, database, events, window, batch_size
            )
        window_label = window.describe() if window else "none"
        decay_label = engine_config.decay or "none"
        latency_us = 1e6 * seconds / len(events)
        print(
            f"{ring:>6} {window_label:>16} {decay_label:>10} {seconds:>9.3f} "
            f"{latency_us:>10.2f}"
        )
        records.append(
            {
                "engine": f"windowed-{ring}",
                "ingest": "stream",
                "window": window_label,
                "decay": decay_label,
                "updates": len(events),
                "seconds": round(seconds, 6),
                "latency_us": round(latency_us, 2),
            }
        )
    print("windowed results equal batch evaluation over the live window ✓")


def _assert_window_equivalence(
    engine, query, database, events, window, batch_size
) -> None:
    """Windowed ingest == fresh batch evaluation over the live events."""
    timed = [(name, row, step, i) for i, (name, row, step) in enumerate(events)]
    last = len(events) - 1
    live = live_window_events(
        timed, window, window.boundary(last), upto=last
    )
    reference = FIVMEngine(query, order=retailer_variable_order())
    reference.initialize(database)
    reference.apply_stream(iter(live), batch_size=batch_size)
    assert engine.result() == reference.result(), (
        f"windowed ingest diverged from live-window batch evaluation "
        f"({window.describe()})"
    )


def _timed_restore(factory, path, repeats=3) -> float:
    """Best-of-N restore seconds into a fresh engine (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        engine = factory()
        started = time.perf_counter()
        restore_checkpoint(engine, path)
        best = min(best, time.perf_counter() - started)
    return best


def bench_checkpoints(database, events, batch_size, records) -> None:
    """Four full snapshots vs full + 3 increments: bytes and restore time."""
    query = retailer_query(CountSpec())
    size = max(len(events) // 4, 4)
    window = WindowSpec(size, max(size // 2, 1))
    # Pre-compile the windowed stream: checkpoints land between event
    # quarters, the way a long-running windowed pipeline would take them.
    windowed = list(WindowedStream(window, iter(events)))
    quarters = [
        windowed[i * len(windowed) // 4: (i + 1) * len(windowed) // 4]
        for i in range(4)
    ]

    def fresh():
        engine = FIVMEngine(query, order=retailer_variable_order())
        engine.initialize(database)
        return engine

    with tempfile.TemporaryDirectory(prefix="fivm-windowed-") as tmp:
        # Full snapshots after every quarter.
        engine = fresh()
        full_paths = []
        full_save_s = 0.0
        for i, quarter in enumerate(quarters):
            engine.apply_stream(iter(quarter), batch_size=batch_size)
            path = os.path.join(tmp, f"full{i}.ckpt")
            started = time.perf_counter()
            write_checkpoint(engine, path)
            full_save_s += time.perf_counter() - started
            full_paths.append(path)
        full_bytes = sum(os.path.getsize(path) for path in full_paths)
        expected = engine.result().copy()
        full_restore_s = _timed_restore(fresh, full_paths[-1])

        # The same run persisted as a chain: full + 3 increments.
        engine = fresh()
        prev = None
        chain_paths = []
        chain_save_s = 0.0
        for i, quarter in enumerate(quarters):
            engine.apply_stream(iter(quarter), batch_size=batch_size)
            path = os.path.join(
                tmp, "chain.ckpt" if i == 0 else f"chain.ckpt.inc{i}"
            )
            state = engine.export_state()
            started = time.perf_counter()
            info = write_checkpoint(
                engine, path, base=prev, state=state
            )
            chain_save_s += time.perf_counter() - started
            prev = (info, state)
            chain_paths.append(path)
        chain_bytes = sum(os.path.getsize(path) for path in chain_paths)
        chain_restore_s = _timed_restore(fresh, chain_paths[-1])

        restored = fresh()
        restore_checkpoint(restored, chain_paths[-1])
        assert restored.result() == expected, (
            "chain restore diverged from the uninterrupted windowed run"
        )

    print(
        f"\n{'mode':>8} {'save ms':>9} {'restore ms':>12} {'bytes':>10}"
    )
    for mode, save_s, restore_s, total_bytes in (
        ("full x4", full_save_s, full_restore_s, full_bytes),
        ("chain", chain_save_s, chain_restore_s, chain_bytes),
    ):
        print(
            f"{mode:>8} {1e3 * save_s:>9.1f} {1e3 * restore_s:>12.1f} "
            f"{total_bytes:>10}"
        )
        records.append(
            {
                "engine": "checkpoint-windowed",
                "ingest": f"restore-{'chain' if mode == 'chain' else 'full'}",
                "window": window.describe(),
                "updates": len(events),
                "seconds": round(restore_s, 6),
                "latency_us": round(1e6 * restore_s / len(events), 2),
                "snapshot_bytes": total_bytes,
            }
        )
    assert chain_bytes < full_bytes, (
        f"incremental chain ({chain_bytes} B) should cost fewer bytes than "
        f"repeated full snapshots ({full_bytes} B)"
    )
    # Chain restore reads one full file plus three small deltas, so it
    # should land in the same ballpark as a single full restore; the 1.5x
    # headroom absorbs timer noise at smoke scale (the perf gate tracks
    # the absolute latency over time).
    assert chain_restore_s <= 1.5 * full_restore_s + 0.01, (
        f"chain restore ({1e3 * chain_restore_s:.1f} ms) regressed far "
        f"beyond a full restore ({1e3 * full_restore_s:.1f} ms)"
    )
    print(
        f"chain bytes {chain_bytes} < repeated fulls {full_bytes} "
        f"({full_bytes / chain_bytes:.1f}x smaller) ✓"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes, CI gate")
    parser.add_argument("--updates", type=int, default=20_000)
    parser.add_argument("--batch-size", type=int, default=500)
    parser.add_argument("--json", metavar="PATH", help="write measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = min(args.updates, 2000)

    config = SMOKE_CONFIG if args.smoke else CONFIG
    database = generate_retailer(config)
    events = make_events(database, config, args.updates)

    print(
        f"# windowed maintenance benchmark (retailer, "
        f"{'smoke' if args.smoke else 'full'} mode, {len(events)} updates)\n"
    )
    records = []
    bench_ingest(database, events, args.batch_size, records)
    bench_checkpoints(database, events, args.batch_size, records)

    if args.json:
        artifact = {
            "benchmark": "windowed",
            "mode": "smoke" if args.smoke else "full",
            "dataset": "retailer",
            "cpu_count": os.cpu_count() or 1,
            "results": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"\nwrote {len(records)} measurements to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
