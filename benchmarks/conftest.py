"""Shared benchmark fixtures: scaled-down Retailer/Favorita workloads.

Sizes are chosen so the whole suite finishes in minutes under CPython
while preserving the relative behaviour the paper's experiments measure
(see DESIGN.md's substitution table).
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    FavoritaConfig,
    RetailerConfig,
    UpdateStream,
    favorita_row_factories,
    favorita_variable_order,
    generate_favorita,
    generate_retailer,
    retailer_row_factories,
    retailer_variable_order,
)

RETAILER_CONFIG = RetailerConfig(
    locations=8, dates=15, items=60, inventory_rows=1200, seed=101
)
FAVORITA_CONFIG = FavoritaConfig(
    stores=8, dates=20, items=50, sales_rows=1000, seed=102
)


@pytest.fixture(scope="session")
def retailer_db():
    return generate_retailer(RETAILER_CONFIG)


@pytest.fixture(scope="session")
def retailer_order():
    return retailer_variable_order()


@pytest.fixture(scope="session")
def favorita_db():
    return generate_favorita(FAVORITA_CONFIG)


@pytest.fixture(scope="session")
def favorita_order():
    return favorita_variable_order()


def retailer_batches(database, count, batch_size=100, insert_ratio=0.7, seed=5):
    """A reproducible list of update batches against Inventory."""
    stream = UpdateStream(
        database,
        retailer_row_factories(RETAILER_CONFIG, database),
        targets=("Inventory",),
        batch_size=batch_size,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return list(stream.batches(count))


def favorita_batches(database, count, batch_size=100, insert_ratio=0.7, seed=6):
    stream = UpdateStream(
        database,
        favorita_row_factories(FAVORITA_CONFIG, database),
        targets=("Sales",),
        batch_size=batch_size,
        insert_ratio=insert_ratio,
        seed=seed,
    )
    return list(stream.batches(count))


def apply_all(engine, batches):
    """The benchmark body: push every batch through the engine."""
    for name, delta in batches:
        engine.apply(name, delta)


def total_updates(batches):
    return sum(
        sum(abs(m) for m in delta.data.values()) for _name, delta in batches
    )
