"""The second demo database: Favorita (six-relation join).

Same engine comparison as the Retailer workload, against updates to the
Sales fact table.
"""

import pytest

from repro.datasets import favorita_query, favorita_regression_features
from repro.engine import FIVMEngine, FirstOrderEngine, NaiveEngine
from repro.rings import CountSpec, CovarSpec

from benchmarks.conftest import apply_all, favorita_batches, total_updates

ENGINES = {
    "fivm": FIVMEngine,
    "first-order": FirstOrderEngine,
    "naive": NaiveEngine,
}


@pytest.mark.parametrize("strategy", list(ENGINES))
def test_count_maintenance(benchmark, strategy, favorita_db, favorita_order):
    query = favorita_query(CountSpec())
    batches = favorita_batches(favorita_db, 6, batch_size=100)
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["strategy"] = strategy

    def setup():
        engine = ENGINES[strategy](query, order=favorita_order)
        engine.initialize(favorita_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=3)


def test_regression_covar_maintenance(benchmark, favorita_db, favorita_order):
    features, _label = favorita_regression_features()
    query = favorita_query(CovarSpec(features))
    batches = favorita_batches(favorita_db, 4, batch_size=100)
    benchmark.extra_info["updates"] = total_updates(batches)

    def setup():
        engine = FIVMEngine(query, order=favorita_order)
        engine.initialize(favorita_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=2)
