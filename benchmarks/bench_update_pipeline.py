"""Batched vs. tuple-at-a-time update ingestion, across all four engines.

Three sections:

1. **F-IVM throughput** — a Retailer tuple stream pushed through
   ``FIVMEngine`` one tuple at a time vs. re-coalesced into batches by the
   :class:`~repro.data.batcher.UpdateBatcher` (``apply_stream``). Batching
   turns N leaf-to-root traversals into N/batch_size, so the batched run
   must be at least ~2x faster at batch size 1000.
2. **Cross-engine equivalence** — naive, first-order, per-aggregate and
   F-IVM each consume the same stream both ways; the final views must be
   identical (this is asserted, and is what the CI smoke job gates on).
3. **Scalar-ring micro-benchmark** — join/marginalize/add_inplace on Z
   payloads with the scalar fast path toggled off and on.

Run standalone (CI smoke: crash/assert fails the job, timing does not)::

    PYTHONPATH=src python benchmarks/bench_update_pipeline.py --smoke
    PYTHONPATH=src python benchmarks/bench_update_pipeline.py  # full 10k stream
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

import repro.data.relation as relation_module
from repro.data import Relation, single
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    continuous_covar_features,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import (
    FIVMEngine,
    FirstOrderEngine,
    NaiveEngine,
    PerAggregateEngine,
)
from repro.rings import CountSpec, CovarSpec

CONFIG = RetailerConfig(locations=8, dates=15, items=60, inventory_rows=1200, seed=101)
SMOKE_CONFIG = RetailerConfig(locations=4, dates=6, items=20, inventory_rows=200, seed=101)


def make_events(database, config, total_updates, seed=7):
    """Materialize a reproducible single-tuple event stream."""
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=max(1, total_updates // 10),
        insert_ratio=0.8,
        seed=seed,
    )
    return list(stream.tuples(total_updates))


def apply_tuple_at_a_time(engine, events):
    schemas = {
        name: engine.query.schema_of(name).attributes
        for name in engine.query.relation_names
    }
    for name, row, multiplicity in events:
        engine.apply(name, single(schemas[name], row, multiplicity))


def bench_fivm_throughput(database, config, order, total_updates, batch_size):
    events = make_events(database, config, total_updates)
    query = retailer_query(CountSpec())

    tuple_engine = FIVMEngine(query, order=order)
    tuple_engine.initialize(database)
    started = time.perf_counter()
    apply_tuple_at_a_time(tuple_engine, events)
    tuple_s = time.perf_counter() - started

    batched_engine = FIVMEngine(query, order=order)
    batched_engine.initialize(database)
    started = time.perf_counter()
    batched_engine.apply_stream(iter(events), batch_size=batch_size)
    batched_s = time.perf_counter() - started

    assert batched_engine.result() == tuple_engine.result(), (
        "fivm: batched ingestion diverged from tuple-at-a-time"
    )
    speedup = tuple_s / batched_s if batched_s else float("inf")
    print(f"## fivm ingestion, {len(events)} updates, batch size {batch_size}")
    print(f"{'mode':>18} {'seconds':>9} {'updates/s':>11}")
    print(f"{'tuple-at-a-time':>18} {tuple_s:>9.3f} {len(events) / tuple_s:>11.0f}")
    print(f"{'batched':>18} {batched_s:>9.3f} {len(events) / batched_s:>11.0f}")
    print(f"batched speedup: {speedup:.1f}x")
    return speedup


def bench_equivalence(database, config, order, total_updates, batch_size):
    """All four engines: batched and tuple-at-a-time final views agree."""
    events = make_events(database, config, total_updates, seed=11)
    count_query = retailer_query(CountSpec())
    features = continuous_covar_features(limit=2)
    covar_query = retailer_query(CovarSpec(features, backend="numeric"))

    def peragg():
        return PerAggregateEngine(covar_query, features, order=order)

    engines = [
        ("naive", lambda: NaiveEngine(count_query, order=order)),
        ("first-order", lambda: FirstOrderEngine(count_query, order=order)),
        ("fivm", lambda: FIVMEngine(count_query, order=order)),
        ("per-aggregate", peragg),
    ]
    print(f"\n## batched vs tuple-at-a-time equivalence, {len(events)} updates")
    for label, factory in engines:
        tuple_engine = factory()
        tuple_engine.initialize(database)
        apply_tuple_at_a_time(tuple_engine, events)
        batched_engine = factory()
        batched_engine.initialize(database)
        batched_engine.apply_stream(iter(events), batch_size=batch_size)
        expected, actual = tuple_engine.result(), batched_engine.result()
        assert actual.close_to(expected), (
            f"{label}: batched ingestion diverged from tuple-at-a-time"
        )
        if label == "per-aggregate":
            c_t, s_t, q_t = tuple_engine.covar_matrix()
            c_b, s_b, q_b = batched_engine.covar_matrix()
            assert (
                np.isclose(c_t, c_b)
                and np.allclose(s_t, s_b)
                and np.allclose(q_t, q_b)
            ), "per-aggregate: covar matrices diverged"
        print(f"{label:>14}: identical final views ✓ ({len(actual)} result keys)")


def bench_scalar_fastpath(rows, trials=3):
    """Micro-benchmark: Z-payload join + marginalize + add, fast path off/on."""
    rng = np.random.default_rng(3)
    r = Relation(("A", "B"))
    r.data = {
        (int(a), int(b)): int(m)
        for a, b, m in zip(
            rng.integers(0, rows // 4, rows),
            rng.integers(0, 50, rows),
            rng.integers(1, 4, rows),
        )
    }
    s = Relation(("A", "C"))
    s.data = {
        (int(a), int(c)): int(m)
        for a, c, m in zip(
            rng.integers(0, rows // 4, rows),
            rng.integers(0, 50, rows),
            rng.integers(1, 4, rows),
        )
    }

    def body():
        joined = r.join(s)
        grouped = joined.marginalize(("A",))
        grouped.add_inplace(grouped.neg())
        return joined

    timings = {}
    try:
        for enabled in (False, True):
            relation_module.SCALAR_FASTPATH = enabled
            best = float("inf")
            for _ in range(trials):
                started = time.perf_counter()
                body()
                best = min(best, time.perf_counter() - started)
            timings[enabled] = best
    finally:
        relation_module.SCALAR_FASTPATH = True
    speedup = timings[False] / timings[True] if timings[True] else float("inf")
    print(f"\n## scalar fast path micro-benchmark ({len(r)}x{len(s)} join)")
    print(f"generic ring dispatch: {timings[False]:.3f}s")
    print(f"scalar fast path:      {timings[True]:.3f}s")
    print(f"fast-path speedup: {speedup:.2f}x")
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes, CI gate")
    parser.add_argument("--updates", type=int, default=10_000)
    parser.add_argument("--batch-size", type=int, default=1000)
    parser.add_argument("--equivalence-updates", type=int, default=600)
    parser.add_argument("--micro-rows", type=int, default=20_000)
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = min(args.updates, 300)
        args.batch_size = min(args.batch_size, 100)
        args.equivalence_updates = min(args.equivalence_updates, 150)
        args.micro_rows = min(args.micro_rows, 2000)

    config = SMOKE_CONFIG if args.smoke else CONFIG
    database = generate_retailer(config)
    order = retailer_variable_order()
    print(
        f"# update-pipeline benchmark (retailer, "
        f"{'smoke' if args.smoke else 'full'} mode)\n"
    )
    speedup = bench_fivm_throughput(
        database, config, order, args.updates, args.batch_size
    )
    bench_equivalence(
        database, config, order, args.equivalence_updates, args.batch_size
    )
    bench_scalar_fastpath(args.micro_rows)
    if not args.smoke and speedup < 2.0:
        print(
            f"\nWARNING: batched fivm speedup {speedup:.1f}x below the 2x target",
            file=sys.stderr,
        )
    print("\nall ingestion modes agree ✓")
    return 0


if __name__ == "__main__":
    sys.exit(main())
