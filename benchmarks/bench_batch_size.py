"""Batching: throughput vs update batch size.

The paper processes updates in bulks/batches ("batches of up to thousands
of aggregates", 10K-update bulks in the demo). Fixed total work (~600
single-tuple updates), varying the batch size; per-update cost must drop
as batches grow, flattening once per-batch overheads amortize.
"""

import pytest

from repro.datasets import retailer_query
from repro.engine import FIVMEngine
from repro.rings import CovarSpec, Feature

from benchmarks.conftest import apply_all, retailer_batches, total_updates

TOTAL_UPDATES = 600


def spec():
    return CovarSpec(
        (
            Feature.continuous("prize"),
            Feature.continuous("inventoryunits"),
            Feature.continuous("maxtemp"),
        ),
        backend="numeric",
    )


@pytest.mark.parametrize("batch_size", [1, 10, 100, 600])
def test_throughput_vs_batch_size(benchmark, batch_size, retailer_db, retailer_order):
    query = retailer_query(spec())
    count = TOTAL_UPDATES // batch_size
    batches = retailer_batches(
        retailer_db, count, batch_size=batch_size, insert_ratio=0.7, seed=9
    )
    benchmark.extra_info["updates"] = total_updates(batches)
    benchmark.extra_info["batch_size"] = batch_size

    def setup():
        engine = FIVMEngine(query, order=retailer_order)
        engine.initialize(retailer_db)
        return (engine, batches), {}

    benchmark.pedantic(apply_all, setup=setup, rounds=2)
