"""Sharded multi-core ingestion throughput and the adaptive access path.

Three claims are measured on a Retailer update stream:

1. **Sharded throughput** — the same stream ingested by
   :class:`~repro.engine.sharded.ShardedEngine` at 1, 2 and 4 shards,
   swept across every available transport (``pipe`` and ``shm`` on the
   fork-process backend). The coordinator hash-routes deltas on the
   shard plan's attributes while workers maintain their slices
   concurrently, so on a >= 4-core machine 4 shards must reach >= 2.5x
   the 1-shard throughput. The shard-merged result must equal the
   unsharded :class:`FIVMEngine`'s exactly — that equivalence (not the
   timing) is what CI's smoke run gates on; the speedup target is only
   asserted in full mode on hardware with enough cores (a warning is
   printed otherwise, e.g. on single-core CI containers).
2. **Gather scaling** — per-``result()`` coordinator gather time at each
   shard count. The shm transport merges tree-wise in the workers, so
   gather cost must grow *sub-linearly* in the worker count (gated like
   the speedup target: full mode, >= 4 cores).
3. **Adaptive probe-vs-scan** — F-IVM with ``adaptive_probe`` against
   probe-only and scan-only (``use_view_index=False``) ingestion at
   large batch sizes, the regime where PR 2's always-probe path lost to
   scans. All three must agree; adaptive should track or beat both.

``--json PATH`` writes the measurements in the same record format as
``bench_delta_latency.py`` for the perf-regression gate
(``benchmarks/check_perf_regression.py``); sharded records carry a
``transport`` key so pipe and shm gate independently.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharded_ingest.py --smoke
    PYTHONPATH=src python benchmarks/bench_sharded_ingest.py  # full scale
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import EngineConfig
from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import FIVMEngine, ShardedEngine
from repro.engine.sharded import resolve_backend
from repro.engine.transport import available_transports
from repro.rings import CountSpec

CONFIG = RetailerConfig(
    locations=32, dates=90, items=900, inventory_rows=40_000, seed=101
)
SMOKE_CONFIG = RetailerConfig(
    locations=8, dates=10, items=40, inventory_rows=600, seed=101
)

SHARD_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 2.5
#: result() gathers timed per configuration (averaged).
GATHER_ROUNDS = 5
#: 4 shards run 2x the workers of 2 shards (both process-backed, unlike
#: the serial 1-shard baseline); tree gathers must cost less than
#: proportionally more.
GATHER_GROWTH_LIMIT = 2.0
ADAPTIVE_BATCHES = (1000, 4000)


def make_events(database, config, total_updates, seed=7):
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=max(1, total_updates // 10),
        insert_ratio=0.8,
        seed=seed,
    )
    return list(stream.tuples(total_updates))


def sweep_transports(backend: str) -> tuple:
    """The data planes this host can run: both on process, none serial."""
    if resolve_backend(backend, 2) != "process":
        return ("none",)
    return tuple(t for t in ("pipe", "shm") if t in available_transports())


def bench_sharded(database, config, order, args, records):
    """Shard x transport sweep; returns (best 4v1 speedup, gather growth)."""
    events = make_events(database, config, args.updates)
    query = retailer_query(CountSpec())
    reference = FIVMEngine(query, order=order)
    reference.initialize(database)
    reference.apply_stream(iter(events), batch_size=args.batch_size)
    expected = reference.result()

    transports = sweep_transports(args.backend)
    print(
        f"## sharded ingestion, {len(events)} updates "
        f"(retailer stream, batch size {args.batch_size}, "
        f"backend={args.backend}, transports={'/'.join(transports)}, "
        f"{os.cpu_count()} cores)"
    )
    print(
        f"{'shards':>7} {'transport':>10} {'seconds':>9} {'updates/s':>11} "
        f"{'latency/upd':>12} {'gather':>10}"
    )
    seconds = {}
    gathers = {}
    for transport in transports:
        for shards in SHARD_COUNTS:
            engine_config = EngineConfig(
                shards=shards,
                backend=args.backend,
                transport="auto" if transport == "none" else transport,
            )
            engine = ShardedEngine(query, order=order, config=engine_config)
            try:
                engine.initialize(database)
                started = time.perf_counter()
                engine.apply_stream(iter(events), batch_size=args.batch_size)
                result = engine.result()  # synchronizes all workers
                elapsed = time.perf_counter() - started
                started = time.perf_counter()
                for _ in range(GATHER_ROUNDS):
                    engine.result()
                gather_s = (time.perf_counter() - started) / GATHER_ROUNDS
            finally:
                engine.close()
            assert result == expected, (
                f"shard-merged result at {shards} shards over the "
                f"{transport} transport diverged from the unsharded engine"
            )
            seconds[transport, shards] = elapsed
            gathers[transport, shards] = gather_s
            latency_us = 1e6 * elapsed / len(events)
            print(
                f"{shards:>7} {transport:>10} {elapsed:>9.3f} "
                f"{len(events) / elapsed:>11.0f} {latency_us:>9.1f} µs "
                f"{1e6 * gather_s:>7.0f} µs"
            )
            records.append(
                {
                    "engine": "fivm-sharded",
                    "ingest": "stream",
                    "batch_size": args.batch_size,
                    "shards": shards,
                    "transport": transport,
                    "updates": len(events),
                    "seconds": round(elapsed, 6),
                    "updates_per_s": round(len(events) / elapsed, 1),
                    "latency_us": round(latency_us, 2),
                    "gather_us": round(1e6 * gather_s, 2),
                }
            )
    speedup = None
    growth = None
    for transport in transports:
        if seconds.get((transport, 4)):
            ratio = seconds[transport, 1] / seconds[transport, 4]
            speedup = ratio if speedup is None else max(speedup, ratio)
            print(f"4-shard vs 1-shard speedup ({transport}): {ratio:.2f}x")
        if gathers.get((transport, 2)) and gathers.get((transport, 4)):
            rate = gathers[transport, 4] / gathers[transport, 2]
            growth = rate if growth is None else min(growth, rate)
            print(
                f"gather growth ({transport}): 4-shard/2-shard "
                f"{rate:.2f}x for 2x the workers"
            )
    print("shard-merged results identical to the unsharded engine ✓")
    return speedup, growth


def bench_adaptive(database, config, order, args, records):
    """Large-batch ingestion: adaptive vs probe-only vs scan-only."""
    events = make_events(database, config, args.updates, seed=13)
    query = retailer_query(CountSpec())
    modes = (
        ("adaptive", EngineConfig(adaptive_probe=True)),
        ("probe-only", EngineConfig(adaptive_probe=False)),
        ("scan-only", EngineConfig(use_view_index=False)),
    )
    print(f"\n## adaptive probe-vs-scan, {len(events)} updates")
    print(
        f"{'batch':>6} {'mode':>11} {'seconds':>9} {'updates/s':>11} "
        f"{'probe':>6} {'scan':>5}"
    )
    results = {}
    throughput = {}
    for batch_size in ADAPTIVE_BATCHES:
        for mode, engine_config in modes:
            engine = FIVMEngine(query, order=order, config=engine_config)
            engine.initialize(database)
            started = time.perf_counter()
            engine.apply_stream(iter(events), batch_size=batch_size)
            elapsed = time.perf_counter() - started
            results[batch_size, mode] = engine.result()
            throughput[batch_size, mode] = len(events) / elapsed
            print(
                f"{batch_size:>6} {mode:>11} {elapsed:>9.3f} "
                f"{len(events) / elapsed:>11.0f} "
                f"{engine.stats.probe_steps:>6} {engine.stats.scan_steps:>5}"
            )
            records.append(
                {
                    "engine": f"fivm-{mode}",
                    "ingest": "stream",
                    "batch_size": batch_size,
                    "updates": len(events),
                    "seconds": round(elapsed, 6),
                    "updates_per_s": round(len(events) / elapsed, 1),
                    "latency_us": round(1e6 * elapsed / len(events), 2),
                }
            )
    reference = results[ADAPTIVE_BATCHES[0], "adaptive"]
    assert all(result == reference for result in results.values()), (
        "adaptive / probe-only / scan-only results diverged"
    )
    print("adaptive, probe-only and scan-only agree ✓")
    return throughput


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes, CI gate")
    parser.add_argument("--updates", type=int, default=20_000)
    parser.add_argument("--batch-size", type=int, default=500)
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process"),
        default="auto",
        help="ShardedEngine backend (auto: fork processes when available)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="never fail on the speedup target (always asserted: equivalence)",
    )
    parser.add_argument("--json", metavar="PATH", help="write measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = min(args.updates, 2000)

    config = SMOKE_CONFIG if args.smoke else CONFIG
    database = generate_retailer(config)
    order = retailer_variable_order()
    print(
        f"# sharded-ingest benchmark (retailer, "
        f"{'smoke' if args.smoke else 'full'} mode)\n"
    )
    records = []
    speedup, gather_growth = bench_sharded(database, config, order, args, records)
    bench_adaptive(database, config, order, args, records)

    cores = os.cpu_count() or 1
    gate_scaling = (
        not args.smoke and not args.no_gate and cores >= max(SHARD_COUNTS)
    )
    failures = []
    if speedup is not None and speedup < SPEEDUP_TARGET:
        failures.append(
            f"4-shard speedup {speedup:.2f}x below the {SPEEDUP_TARGET}x target "
            f"({cores} cores available)"
        )
    if gather_growth is not None and gather_growth >= GATHER_GROWTH_LIMIT:
        failures.append(
            f"gather time grew {gather_growth:.2f}x from 2 to 4 shards — "
            f"not sub-linear in the worker count (limit "
            f"{GATHER_GROWTH_LIMIT:.1f}x)"
        )
    for message in failures:
        if gate_scaling:
            print(f"\nFAIL: {message}", file=sys.stderr)
            return 1
        print(f"\nWARNING: {message} — not gating", file=sys.stderr)

    if args.json:
        artifact = {
            "benchmark": "sharded_ingest",
            "mode": "smoke" if args.smoke else "full",
            "dataset": "retailer",
            "cpu_count": cores,
            "shard_speedup_4v1": round(speedup, 3) if speedup else None,
            "gather_growth_4v2": (
                round(gather_growth, 3) if gather_growth else None
            ),
            "results": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"\nwrote {len(records)} measurements to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
