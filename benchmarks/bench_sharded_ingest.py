"""Sharded multi-core ingestion throughput and the adaptive access path.

Two claims are measured on a Retailer update stream:

1. **Sharded throughput** — the same stream ingested by
   :class:`~repro.engine.sharded.ShardedEngine` at 1, 2 and 4 shards
   (fork-process backend by default). The coordinator hash-routes deltas
   on the shard plan's attributes while workers maintain their slices
   concurrently, so on a >= 4-core machine 4 shards must reach >= 2.5x
   the 1-shard throughput. The shard-merged result must equal the
   unsharded :class:`FIVMEngine`'s exactly — that equivalence (not the
   timing) is what CI's smoke run gates on; the speedup target is only
   asserted in full mode on hardware with enough cores (a warning is
   printed otherwise, e.g. on single-core CI containers).
2. **Adaptive probe-vs-scan** — F-IVM with ``adaptive_probe`` against
   probe-only and scan-only (``use_view_index=False``) ingestion at
   large batch sizes, the regime where PR 2's always-probe path lost to
   scans. All three must agree; adaptive should track or beat both.

``--json PATH`` writes the measurements in the same record format as
``bench_delta_latency.py`` for the perf-regression gate
(``benchmarks/check_perf_regression.py``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharded_ingest.py --smoke
    PYTHONPATH=src python benchmarks/bench_sharded_ingest.py  # full scale
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.datasets import (
    RetailerConfig,
    UpdateStream,
    generate_retailer,
    retailer_query,
    retailer_row_factories,
    retailer_variable_order,
)
from repro.engine import FIVMEngine, ShardedEngine
from repro.rings import CountSpec

CONFIG = RetailerConfig(
    locations=32, dates=90, items=900, inventory_rows=40_000, seed=101
)
SMOKE_CONFIG = RetailerConfig(
    locations=8, dates=10, items=40, inventory_rows=600, seed=101
)

SHARD_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 2.5
ADAPTIVE_BATCHES = (1000, 4000)


def make_events(database, config, total_updates, seed=7):
    stream = UpdateStream(
        database,
        retailer_row_factories(config, database),
        targets=("Inventory",),
        batch_size=max(1, total_updates // 10),
        insert_ratio=0.8,
        seed=seed,
    )
    return list(stream.tuples(total_updates))


def bench_sharded(database, config, order, args, records):
    """Shard sweep; returns the 4-vs-1 speedup (None if 4 was skipped)."""
    events = make_events(database, config, args.updates)
    query = retailer_query(CountSpec())
    reference = FIVMEngine(query, order=order)
    reference.initialize(database)
    reference.apply_stream(iter(events), batch_size=args.batch_size)
    expected = reference.result()

    print(
        f"## sharded ingestion, {len(events)} updates "
        f"(retailer stream, batch size {args.batch_size}, "
        f"backend={args.backend}, {os.cpu_count()} cores)"
    )
    print(f"{'shards':>7} {'seconds':>9} {'updates/s':>11} {'latency/upd':>12}")
    seconds = {}
    for shards in SHARD_COUNTS:
        engine = ShardedEngine(
            query, order=order, shards=shards, backend=args.backend
        )
        try:
            engine.initialize(database)
            started = time.perf_counter()
            engine.apply_stream(iter(events), batch_size=args.batch_size)
            result = engine.result()  # synchronizes all workers
            elapsed = time.perf_counter() - started
        finally:
            engine.close()
        assert result == expected, (
            f"shard-merged result at {shards} shards diverged from the "
            "unsharded engine"
        )
        seconds[shards] = elapsed
        latency_us = 1e6 * elapsed / len(events)
        print(
            f"{shards:>7} {elapsed:>9.3f} {len(events) / elapsed:>11.0f} "
            f"{latency_us:>9.1f} µs"
        )
        records.append(
            {
                "engine": "fivm-sharded",
                "ingest": "stream",
                "batch_size": args.batch_size,
                "shards": shards,
                "updates": len(events),
                "seconds": round(elapsed, 6),
                "updates_per_s": round(len(events) / elapsed, 1),
                "latency_us": round(latency_us, 2),
            }
        )
    speedup = seconds[1] / seconds[4] if seconds.get(4) else None
    if speedup is not None:
        print(f"4-shard vs 1-shard speedup: {speedup:.2f}x")
    print("shard-merged results identical to the unsharded engine ✓")
    return speedup


def bench_adaptive(database, config, order, args, records):
    """Large-batch ingestion: adaptive vs probe-only vs scan-only."""
    events = make_events(database, config, args.updates, seed=13)
    query = retailer_query(CountSpec())
    modes = (
        ("adaptive", dict(adaptive_probe=True)),
        ("probe-only", dict(adaptive_probe=False)),
        ("scan-only", dict(use_view_index=False)),
    )
    print(f"\n## adaptive probe-vs-scan, {len(events)} updates")
    print(
        f"{'batch':>6} {'mode':>11} {'seconds':>9} {'updates/s':>11} "
        f"{'probe':>6} {'scan':>5}"
    )
    results = {}
    throughput = {}
    for batch_size in ADAPTIVE_BATCHES:
        for mode, kwargs in modes:
            engine = FIVMEngine(query, order=order, **kwargs)
            engine.initialize(database)
            started = time.perf_counter()
            engine.apply_stream(iter(events), batch_size=batch_size)
            elapsed = time.perf_counter() - started
            results[batch_size, mode] = engine.result()
            throughput[batch_size, mode] = len(events) / elapsed
            print(
                f"{batch_size:>6} {mode:>11} {elapsed:>9.3f} "
                f"{len(events) / elapsed:>11.0f} "
                f"{engine.stats.probe_steps:>6} {engine.stats.scan_steps:>5}"
            )
            records.append(
                {
                    "engine": f"fivm-{mode}",
                    "ingest": "stream",
                    "batch_size": batch_size,
                    "updates": len(events),
                    "seconds": round(elapsed, 6),
                    "updates_per_s": round(len(events) / elapsed, 1),
                    "latency_us": round(1e6 * elapsed / len(events), 2),
                }
            )
    reference = results[ADAPTIVE_BATCHES[0], "adaptive"]
    assert all(result == reference for result in results.values()), (
        "adaptive / probe-only / scan-only results diverged"
    )
    print("adaptive, probe-only and scan-only agree ✓")
    return throughput


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes, CI gate")
    parser.add_argument("--updates", type=int, default=20_000)
    parser.add_argument("--batch-size", type=int, default=500)
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process"),
        default="auto",
        help="ShardedEngine backend (auto: fork processes when available)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="never fail on the speedup target (always asserted: equivalence)",
    )
    parser.add_argument("--json", metavar="PATH", help="write measurements as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates = min(args.updates, 2000)

    config = SMOKE_CONFIG if args.smoke else CONFIG
    database = generate_retailer(config)
    order = retailer_variable_order()
    print(
        f"# sharded-ingest benchmark (retailer, "
        f"{'smoke' if args.smoke else 'full'} mode)\n"
    )
    records = []
    speedup = bench_sharded(database, config, order, args, records)
    bench_adaptive(database, config, order, args, records)

    cores = os.cpu_count() or 1
    gate_speedup = (
        not args.smoke and not args.no_gate and cores >= max(SHARD_COUNTS)
    )
    if speedup is not None and speedup < SPEEDUP_TARGET:
        message = (
            f"4-shard speedup {speedup:.2f}x below the {SPEEDUP_TARGET}x target "
            f"({cores} cores available)"
        )
        if gate_speedup:
            print(f"\nFAIL: {message}", file=sys.stderr)
            return 1
        print(f"\nWARNING: {message} — not gating", file=sys.stderr)

    if args.json:
        artifact = {
            "benchmark": "sharded_ingest",
            "mode": "smoke" if args.smoke else "full",
            "dataset": "retailer",
            "cpu_count": cores,
            "shard_speedup_4v1": round(speedup, 3) if speedup else None,
            "results": records,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"\nwrote {len(records)} measurements to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
